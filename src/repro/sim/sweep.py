"""Backend-agnostic sweep orchestration over independent simulations.

Every paper figure is a cross product of independent ``run_once`` calls
(workload x mechanism x system x core count), so wall-clock time scales
with the whole grid even though no cell depends on another.  The sweep
layer restores the obvious parallelism: :func:`execute_sweep` fans
configs out through a pluggable :class:`~repro.sim.backends.base.\
SweepBackend` — in-process ``serial``, supervised local ``pool``
workers, or the multi-host ``fileq`` queue — and memoizes finished
cells in an on-disk :class:`~repro.analysis.cache.ResultCache`, making
every sweep parallel, resumable, and fault tolerant.

The *supervisor loop* here is the interface contract, identical for
every backend: bounded retries with exponential backoff, per-cell
timeouts (where the backend can preempt), and quarantine into a
:class:`FailureManifest`.  Backends only report attempt outcomes —
``ok``, ``error``, or ``lost`` (the executor vanished) — so a dead
remote worker is the same event as a SIGKILLed local one.

Guarantees the figure drivers rely on:

* **Bit identity.**  The simulator is deterministic across processes
  (seeded RNGs, integer PWC indexing), so a sweep run on any backend
  at any worker count returns results identical field-for-field to
  the serial loop; the golden-stats tests would catch any divergence.
* **Order preservation.**  One result per input config, in input
  order, regardless of completion order.
* **Dedup.**  Identical configs inside one sweep (e.g. a shared radix
  baseline) are simulated once and the result is shared.
* **Resumability.**  Results are persisted to the cache the moment they
  arrive (atomically, one file per cell), so an interrupted sweep —
  Ctrl-C, OOM-killed worker, CI timeout — leaves behind exactly the
  finished cells and a re-run simulates only the missing ones.
* **Fault isolation.**  Executors report per-cell outcomes (result or
  captured traceback), so one raising cell cannot poison its worker
  or the sweep.  A cell that keeps failing is *quarantined*: the
  sweep completes every other cell and reports the casualties in the
  manifest.  ``strict=True`` (the default policy) raises
  :class:`SweepFailure` at the end — after completing everything
  completable; ``strict=False`` returns ``None`` in the quarantined
  cells' slots, which the figure drivers render as explicit holes.

New callers should go through :mod:`repro.service`::

    from repro.service import SweepPolicy, SweepService

    service = SweepService(backend="pool", jobs=4,
                           cache_dir=".sweep-cache",
                           policy=SweepPolicy(retries=1, strict=False))
    grid = service.run_grid(expand_grid(workloads=("bfs", "xs"),
                                        mechanisms=("radix", "ndpage")))
    print(grid.stats.summary())

:class:`SweepRunner` remains as a deprecated shim over the same
machinery.  Fault injection (tests, CI chaos job) threads a
:class:`~repro.sim.faults.FaultPlan` through the executors — see
:mod:`repro.sim.faults`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from itertools import product
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.events import dropped_events, emit
from repro.obs.metrics import MetricsRegistry
from repro.sim.backends.base import Attempt, BackendSpec, SweepBackend
from repro.sim.config import SystemConfig, cpu_config, ndp_config
from repro.sim.faults import FaultPlan, cell_label
from repro.sim.journal import (
    JournalState,
    SweepJournal,
    journal_path,
    load_journal,
)
from repro.sim.runner import RunResult, run_once


def derive_seed(base_seed: int, *parts) -> int:
    """Deterministic per-cell seed from a base seed and cell identity.

    Stable across processes and runs (SHA-256, not ``hash()``), and
    independent of the cell's position in the sweep, so adding cells to
    a grid never changes the seeds of existing ones.
    """
    text = ":".join([str(base_seed)] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(workloads: Sequence[str] = ("rnd",),
                mechanisms: Sequence[str] = ("radix",),
                systems: Sequence[str] = ("ndp",),
                core_counts: Sequence[int] = (1,),
                refs_per_core: int = 5000,
                scale: float = 1.0,
                seed: int = 42,
                vary_seed: bool = False,
                **overrides) -> List[SystemConfig]:
    """Cross product of sweep axes as a flat config list.

    Cells are ordered workload-major (workload, mechanism, system,
    cores) to match the serial figure loops.  With ``vary_seed`` each
    cell gets a :func:`derive_seed`-derived seed instead of the shared
    base seed — deterministic, but distinct per cell.
    """
    configs = []
    for workload, mechanism, system, cores in product(
            workloads, mechanisms, systems, core_counts):
        cell_seed = (derive_seed(seed, workload, mechanism, system,
                                 cores)
                     if vary_seed else seed)
        factory = ndp_config if system == "ndp" else cpu_config
        configs.append(factory(
            workload=workload, mechanism=mechanism, num_cores=cores,
            refs_per_core=refs_per_core, scale=scale, seed=cell_seed,
            **overrides))
    return configs


# -- failure accounting -------------------------------------------------------

@dataclass
class CellFailure:
    """One quarantined cell: why the sweep gave up on it."""

    key: str          # cache key / canonical identity
    label: str        # human-readable cell_label()
    attempts: int     # dispatches spent before quarantine
    kind: str         # "error" | "timeout" | "worker-died"
    error: str        # last traceback / diagnosis

    def to_dict(self) -> Dict[str, object]:
        return {"key": self.key, "label": self.label,
                "attempts": self.attempts, "kind": self.kind,
                "error": self.error}


@dataclass
class FailureManifest:
    """The cells a sweep could not complete, with their post-mortems."""

    failures: List[CellFailure] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.failures)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __iter__(self):
        return iter(self.failures)

    def labels(self) -> List[str]:
        return [failure.label for failure in self.failures]

    def format(self) -> str:
        """Readable multi-line report (what the CLI prints)."""
        if not self.failures:
            return "failure manifest: empty"
        lines = [f"failure manifest: {len(self.failures)} cell(s) "
                 f"quarantined"]
        for failure in self.failures:
            lines.append(f"  {failure.label} [{failure.key[:12]}] — "
                         f"{failure.kind} after {failure.attempts} "
                         f"attempt(s)")
            tail = failure.error.strip().splitlines()
            if tail:
                lines.append(f"    {tail[-1]}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {"failed": len(self.failures),
                "failures": [f.to_dict() for f in self.failures]}


class SweepFailure(RuntimeError):
    """Strict-mode terminal error: raised *after* the sweep completed
    every healthy cell, carrying the manifest of the ones it didn't."""

    def __init__(self, manifest: FailureManifest):
        super().__init__(manifest.format())
        self.manifest = manifest


class SweepInterrupted(KeyboardInterrupt):
    """Graceful drain: the supervisor caught SIGTERM/SIGINT, cancelled
    the backend's in-flight work, journalled the interruption, and
    unwound.  Every completed cell is already in the cache and the
    journal (if enabled) preserves retry budgets and backoff clocks —
    re-running the same command with ``--resume`` continues where the
    sweep stopped.  Subclasses :class:`KeyboardInterrupt` so generic
    ``except Exception`` recovery code does not swallow a drain.
    """

    def __init__(self, completed: int, pending: int, requeued: int):
        super().__init__(
            f"sweep interrupted: {completed} cell(s) completed, "
            f"{requeued} in flight requeued, {pending} still pending")
        self.completed = completed
        self.pending = pending
        self.requeued = requeued


@dataclass
class SweepStats:
    """What the last sweep actually did."""

    cells: int = 0            # configs requested
    unique: int = 0           # after in-sweep dedup
    cache_hits: int = 0       # unique cells served from disk
    simulated: int = 0        # unique cells actually run
    jobs: int = 1
    wall_seconds: float = 0.0
    references: int = 0       # simulated references (fresh cells only)
    failed: int = 0           # cells quarantined after exhausting retries
    retries: int = 0          # re-dispatches (any reason)
    timeouts: int = 0         # cell attempts killed for exceeding timeout
    worker_deaths: int = 0    # workers that died mid-cell (and respawns)
    manifest: FailureManifest = field(default_factory=FailureManifest)
    #: Telemetry snapshot (queue-wait / attempt-wall / cache-store
    #: histograms and dispatch counters) from the sweep's
    #: :class:`~repro.obs.metrics.MetricsRegistry`; empty when no
    #: cell was simulated.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.unique if self.unique else 0.0

    @property
    def refs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.references / self.wall_seconds

    def summary(self) -> str:
        text = (f"{self.cells} cells ({self.unique} unique): "
                f"{self.cache_hits} cached, {self.simulated} simulated "
                f"on {self.jobs} worker(s) in {self.wall_seconds:.2f} s"
                + (f" ({self.refs_per_sec:,.0f} refs/s)"
                   if self.simulated else ""))
        if self.failed or self.retries:
            text += (f" [{self.failed} quarantined, "
                     f"{self.retries} retried, "
                     f"{self.timeouts} timeouts, "
                     f"{self.worker_deaths} worker deaths]")
        return text


# -- execution policy ---------------------------------------------------------

@dataclass(frozen=True)
class SweepPolicy:
    """How a sweep treats misbehaving cells — one explicit object in
    place of the old kwarg pile, shared by every backend.

    ``retries`` re-dispatches are granted to a failing cell before it
    is quarantined (``retries=1`` means at most 2 attempts).
    ``cell_timeout`` seconds bound one attempt where the backend can
    preempt (pool kills the worker; fileq abandons the attempt; the
    in-process serial backend cannot preempt).  ``backoff`` is the
    base re-dispatch delay, doubling per subsequent attempt.  With
    ``strict=True`` a quarantined cell raises :class:`SweepFailure`
    after the sweep completed every healthy cell; ``strict=False``
    leaves ``None`` holes instead.  ``fault_plan`` injects
    deterministic faults (defaults to ``REPRO_FAULT_PLAN``).
    """

    retries: int = 1
    cell_timeout: Optional[float] = None
    backoff: float = 0.25
    strict: bool = True
    fault_plan: Optional[Union[FaultPlan, str]] = None

    def active_plan(self) -> Optional[FaultPlan]:
        plan = self.fault_plan
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if plan is None:
            plan = FaultPlan.from_env()
        return plan if plan else None


def _ensure_picklable(run_fn: Callable) -> None:
    """Fail fast — before any worker is spawned — on a ``run_fn`` the
    pool could not ship (lambda, closure, bound local), instead of the
    opaque mid-sweep ``PicklingError`` the old pool loop produced."""
    try:
        pickle.dumps(run_fn)
    except Exception as exc:
        raise ValueError(
            f"run_fn {run_fn!r} is not picklable, so it cannot be "
            f"dispatched to worker processes (jobs > 1): pass a "
            f"top-level function, or run with jobs=1") from exc


# -- the backend-agnostic supervisor ------------------------------------------

class _CellWork:
    """One unique cell's dispatch state inside the supervisor."""

    __slots__ = ("pos", "key", "config", "data", "label", "attempt",
                 "not_before", "deadline", "ready_since",
                 "dispatched_at")

    def __init__(self, pos: int, key: str, config: SystemConfig):
        self.pos = pos
        self.key = key
        self.config = config
        self.data = config.to_dict()
        self.label = cell_label(config)
        self.attempt = 0                       # dispatches so far
        self.not_before = 0.0                  # backoff gate
        self.deadline: Optional[float] = None  # timeout gate
        self.ready_since = 0.0                 # telemetry: queue wait
        self.dispatched_at = 0.0               # telemetry: attempt wall


def execute_sweep(configs: Sequence[SystemConfig],
                  spec: Optional[BackendSpec] = None,
                  policy: Optional[SweepPolicy] = None,
                  cache=None,
                  run_fn: Optional[Callable] = None,
                  journal_dir=None,
                  resume: bool = False,
                  ) -> Tuple[List[Optional[RunResult]], SweepStats]:
    """Run every config through the selected backend; never raises on
    quarantine (callers apply ``policy.strict`` to the returned stats).

    Returns ``(results-in-input-order, stats)``; quarantined cells
    yield ``None`` slots and appear in ``stats.manifest``.

    ``journal_dir`` enables the crash-resume journal (one JSONL file
    per sweep identity under that directory — see
    :mod:`repro.sim.journal`); with ``resume=True`` a journal left by
    a killed supervisor restores per-cell attempt counts, backoff
    clocks, and quarantine decisions, while the cache restores the
    completed cells.
    """
    spec = spec or BackendSpec()
    policy = policy or SweepPolicy()
    start = time.perf_counter()

    keys = [cache.key(config) if cache is not None
            else config.canonical_json() for config in configs]

    # In-sweep dedup: first occurrence wins.
    unique: Dict[str, SystemConfig] = {}
    for key, config in zip(keys, configs):
        unique.setdefault(key, config)

    results: Dict[str, RunResult] = {}
    if cache is not None:
        for key, config in unique.items():
            cached = cache.load(config, key=key)
            if cached is not None:
                results[key] = cached

    missing = [(key, config) for key, config in unique.items()
               if key not in results]
    stats = SweepStats(cells=len(configs), unique=len(unique),
                       cache_hits=len(unique) - len(missing),
                       simulated=len(missing),
                       jobs=max(1, spec.jobs))
    emit("sweep.started", cells=len(configs), unique=len(unique),
         cached=stats.cache_hits, missing=len(missing),
         backend=spec.name, jobs=spec.jobs)

    journal: Optional[SweepJournal] = None
    resume_state: Optional[JournalState] = None
    if journal_dir is not None:
        path = journal_path(journal_dir, list(unique))
        if resume:
            resume_state = load_journal(path)
            if not resume_state:
                resume_state = None
        journal = SweepJournal(path, resume=resume,
                               fault_plan=policy.active_plan())
        journal.record("start", cells=len(configs),
                       unique=len(unique), cached=stats.cache_hits,
                       missing=len(missing), backend=spec.name,
                       resumed=resume_state is not None)

    try:
        if missing:
            backend = spec.resolve(len(missing), policy.cell_timeout)
            registry = MetricsRegistry()
            _execute_missing(backend, missing, results, run_fn, stats,
                             policy, cache, registry, journal,
                             resume_state)
            dropped = dropped_events()
            if dropped:
                registry.counter("events.dropped").inc(dropped)
            stats.metrics = registry.snapshot()
    finally:
        if journal is not None:
            journal.close()

    stats.failed = len(stats.manifest)
    stats.references = sum(
        results[key].references for key, _ in missing
        if key in results)
    stats.wall_seconds = time.perf_counter() - start
    emit("sweep.finished", cells=stats.cells,
         completed=len(missing) - stats.failed, failed=stats.failed,
         retries=stats.retries, wall=round(stats.wall_seconds, 6))
    return [results.get(key) for key in keys], stats


def _execute_missing(backend: SweepBackend, missing, results, run_fn,
                     stats: SweepStats, policy: SweepPolicy,
                     cache,
                     registry: Optional[MetricsRegistry] = None,
                     journal: Optional[SweepJournal] = None,
                     resume_state: Optional[JournalState] = None
                     ) -> None:
    """The supervisor loop: dispatch cells into the backend, collect
    outcomes, and apply the retry/backoff/timeout/quarantine contract
    uniformly — the backend only executes attempts and reports what
    became of them.

    This loop also owns the canonical per-cell telemetry: every
    attempt's lifecycle (``cell.dispatched`` → ``cell.completed`` /
    ``cell.failed`` → ``cell.retried`` / ``cell.quarantined``) is
    emitted *here*, supervisor-side, so the event log is complete for
    every backend — including attempts whose executor vanished without
    reporting anything.  ``registry`` collects the timing breakdown
    (queue wait, attempt wall, cache-store time).

    Resilience duties (all optional): every dispatch/outcome is also
    appended to ``journal``; ``resume_state`` (a previous run's
    journal) restores attempt counts, backoff gates, and quarantine
    decisions; and SIGTERM/SIGINT (main thread only) triggers a
    graceful drain — cancel in-flight attempts, journal the
    interruption, raise :class:`SweepInterrupted`.
    """
    plan = policy.active_plan()
    plan_text = plan.to_text() if plan is not None else None
    timeout = (policy.cell_timeout if backend.supports_timeout
               else None)
    registry = registry if registry is not None else MetricsRegistry()
    queue_wait = registry.histogram("cell.queue_wait_s")
    attempt_wall = registry.histogram("cell.attempt_s")
    store_wall = registry.histogram("cache.store_s")
    dispatched = registry.counter("cells.dispatched")

    def journal_record(kind: str, **data) -> None:
        if journal is not None:
            journal.record(kind, **data)

    start_mono = time.monotonic()
    start_wall = time.time()
    works: List[_CellWork] = []
    for pos, (key, config) in enumerate(missing):
        cell = _CellWork(pos, key, config)
        cell.ready_since = start_mono
        if resume_state is not None:
            info = resume_state.quarantined.get(key)
            if info is not None:
                # Quarantine decisions survive the supervisor: the
                # previous run gave up on this cell, so this one does
                # not silently grant it a fresh retry budget.
                registry.counter("cells.quarantined").inc()
                emit("cell.quarantined", key=key,
                     label=info["label"] or cell.label,
                     attempts=info["attempts"],
                     kind=info["fail_kind"])
                stats.manifest.failures.append(CellFailure(
                    key=key, label=info["label"] or cell.label,
                    attempts=int(info["attempts"]),
                    kind=str(info["fail_kind"]),
                    error=str(info["error"])
                    or "quarantined by a previous run (journal)"))
                stats.simulated -= 1
                continue
            cell.attempt = resume_state.attempts.get(key, 0)
            gate = resume_state.not_before.get(key, 0.0)
            if gate > start_wall:
                cell.not_before = start_mono + (gate - start_wall)
                cell.ready_since = cell.not_before
        works.append(cell)
    ready: deque = deque(c for c in works
                         if c.not_before <= start_mono)
    waiting: List[_CellWork] = [c for c in works
                                if c.not_before > start_mono]
    inflight: Dict[str, _CellWork] = {}
    outstanding = len(works)

    def settle_ok(cell: _CellWork, result, now: float) -> None:
        wall = now - cell.dispatched_at
        attempt_wall.observe(wall)
        results[cell.key] = result
        journal_record("outcome", key=cell.key,
                       attempt=cell.attempt, status="ok")
        if cache is not None:
            store_start = time.perf_counter()
            try:
                cache.store(cell.config, result, key=cell.key)
            except OSError as exc:
                # Persistent store failure (ENOSPC, dead disk):
                # degrade to a cache hole plus a manifest entry — the
                # in-memory result is still served, this run
                # completes, the next one re-simulates the cell.
                registry.counter("cache.store_errors").inc()
                stats.manifest.failures.append(CellFailure(
                    key=cell.key, label=cell.label,
                    attempts=cell.attempt, kind="cache-io",
                    error=(f"result computed but cache store "
                           f"failed: {exc}")))
            store_wall.observe(time.perf_counter() - store_start)
        emit("cell.completed", key=cell.key, label=cell.label,
             attempt=cell.attempt, wall=round(wall, 6))

    def failed(cell: _CellWork, kind: str, error: str,
               now: float) -> int:
        """Retry or quarantine a failed attempt; returns settled."""
        emit("cell.failed", key=cell.key, label=cell.label,
             attempt=cell.attempt, kind=kind)
        journal_record("outcome", key=cell.key,
                       attempt=cell.attempt, status=kind)
        if cell.attempt >= policy.retries + 1:
            registry.counter("cells.quarantined").inc()
            emit("cell.quarantined", key=cell.key, label=cell.label,
                 attempts=cell.attempt, kind=kind)
            journal_record("quarantine", key=cell.key,
                           label=cell.label, attempts=cell.attempt,
                           fail_kind=kind,
                           error=error.strip()[-500:])
            stats.manifest.failures.append(CellFailure(
                key=cell.key, label=cell.label,
                attempts=cell.attempt, kind=kind, error=error))
            return 1
        delay = policy.backoff * (2 ** (cell.attempt - 1))
        cell.not_before = now + delay
        cell.ready_since = cell.not_before
        emit("cell.retried", key=cell.key, label=cell.label,
             attempt=cell.attempt, delay=round(delay, 6))
        journal_record("retry", key=cell.key, attempt=cell.attempt,
                       not_before=time.time() + delay)
        waiting.append(cell)
        return 0

    # Graceful drain: note SIGTERM/SIGINT and unwind at the next loop
    # boundary instead of dying wherever the signal lands.  Handlers
    # are process-global state, so only the main thread installs them.
    interrupts: List[int] = []
    previous_handlers: Dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        def _note_signal(signum, frame):
            interrupts.append(signum)
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous_handlers[signum] = signal.signal(
                    signum, _note_signal)
            except (ValueError, OSError):   # pragma: no cover
                pass

    def drain() -> SweepInterrupted:
        for key, cell in list(inflight.items()):
            backend.cancel(key, cell.attempt)
        completed = sum(1 for key, _ in missing if key in results)
        pending = len(ready) + len(waiting)
        journal_record("interrupted", requeued=len(inflight),
                       completed=completed, pending=pending)
        emit("sweep.interrupted", completed=completed,
             pending=pending, requeued=len(inflight))
        return SweepInterrupted(completed=completed, pending=pending,
                                requeued=len(inflight))

    backend.open(run_fn, plan_text, len(missing))
    try:
        while outstanding:
            if interrupts:
                raise drain()
            now = time.monotonic()
            if waiting:
                due = [c for c in waiting if c.not_before <= now]
                if due:
                    waiting = [c for c in waiting
                               if c.not_before > now]
                    ready.extend(due)

            # Dispatch ready cells into the backend's capacity.
            capacity = backend.capacity()
            while ready and (capacity is None
                             or len(inflight) < capacity):
                cell = ready.popleft()
                cell.attempt += 1
                counted = cell.attempt > 1
                if counted:
                    stats.retries += 1
                if not backend.dispatch(Attempt(
                        pos=cell.pos, key=cell.key, data=cell.data,
                        label=cell.label, attempt=cell.attempt)):
                    # The attempt never started (e.g. the worker died
                    # while idle): it must not count against the cell.
                    cell.attempt -= 1
                    if counted:
                        stats.retries -= 1
                    ready.appendleft(cell)
                    break
                now = time.monotonic()
                cell.deadline = ((now + timeout) if timeout
                                 else None)
                cell.dispatched_at = now
                queue_wait.observe(max(0.0, now - cell.ready_since))
                dispatched.inc()
                emit("cell.dispatched", key=cell.key,
                     label=cell.label, attempt=cell.attempt)
                journal_record("dispatch", key=cell.key,
                               label=cell.label,
                               attempt=cell.attempt)
                inflight[cell.key] = cell

            if not inflight:
                # Everything is backoff-delayed; sleep it off (in
                # slices, so a drain signal is noticed promptly).
                delay = min((c.not_before for c in waiting),
                            default=now) - now
                if delay > 0:
                    time.sleep(min(delay, 0.5)
                               if previous_handlers else delay)
                continue

            sleeps = [c.deadline - now for c in inflight.values()
                      if c.deadline is not None]
            sleeps += [c.not_before - now for c in waiting]
            wait_for = max(0.0, min(sleeps)) if sleeps else None
            if previous_handlers:
                # Bound the poll so a noted signal drains promptly
                # even when every in-flight cell is long-running.
                wait_for = (0.5 if wait_for is None
                            else min(wait_for, 0.5))
            outcomes = backend.poll(wait_for)
            now = time.monotonic()

            for outcome in outcomes:
                cell = inflight.get(outcome.key)
                if cell is None:
                    continue   # already settled (late duplicate)
                if outcome.status == "ok":
                    # Results are deterministic, so an ok outcome is
                    # accepted even from a superseded attempt.
                    del inflight[outcome.key]
                    settle_ok(cell, outcome.result, now)
                    outstanding -= 1
                    continue
                if outcome.attempt != cell.attempt:
                    continue   # stale failure from an old attempt
                del inflight[outcome.key]
                if outcome.status == "lost":
                    stats.worker_deaths += 1
                    registry.counter("workers.lost").inc()
                    kind = "worker-died"
                else:
                    kind = "error"
                outstanding -= failed(cell, kind, outcome.error, now)

            if timeout:
                for key, cell in list(inflight.items()):
                    if cell.deadline is None or now < cell.deadline:
                        continue
                    stats.timeouts += 1
                    registry.counter("cells.timeout").inc()
                    backend.cancel(key, cell.attempt)
                    del inflight[key]
                    emit("cell.timeout", key=cell.key,
                         label=cell.label, attempt=cell.attempt)
                    error = (f"cell exceeded cell_timeout="
                             f"{policy.cell_timeout}s on attempt "
                             f"{cell.attempt}; worker killed")
                    outstanding -= failed(cell, "timeout", error, now)
    finally:
        backend.close()
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError, TypeError):  # pragma: no cover
                pass


# -- legacy runner (deprecated shim) ------------------------------------------

class SweepRunner:
    """Deprecated: construct a :class:`repro.service.SweepService`
    (or call :func:`execute_sweep`) instead.

    The old kwarg-pile constructor keeps working — it now builds a
    :class:`SweepPolicy` + :class:`BackendSpec` pair and delegates to
    :func:`execute_sweep` — and emits a ``DeprecationWarning``.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` means ``os.cpu_count()``;
        ``1`` runs everything in-process (no pool, no pickling).
    cache:
        A :class:`~repro.analysis.cache.ResultCache` (or any object
        with the same ``key``/``load``/``store`` surface), or ``None``
        to disable persistence.
    cache_dir:
        Convenience: build a ``ResultCache`` rooted here.  Ignored
        when ``cache`` is given.
    chunk_size:
        Unused since the supervised runner dispatches per cell;
        accepted for backward compatibility.
    retries / cell_timeout / backoff / strict / fault_plan:
        See :class:`SweepPolicy`.
    """

    def __init__(self, jobs: Optional[int] = 1, cache=None,
                 cache_dir=None, chunk_size: Optional[int] = None,
                 retries: int = 1,
                 cell_timeout: Optional[float] = None,
                 backoff: float = 0.25,
                 strict: bool = True,
                 fault_plan: Optional[Union[FaultPlan, str]] = None):
        warnings.warn(
            "SweepRunner is deprecated; use repro.service.SweepService "
            "(submit/gather/run_grid) with a SweepPolicy instead",
            DeprecationWarning, stacklevel=2)
        if cache is None and cache_dir is not None:
            from repro.analysis.cache import ResultCache
            cache = ResultCache(cache_dir)
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.cache = cache
        self.chunk_size = chunk_size
        self.retries = max(0, retries)
        self.cell_timeout = cell_timeout
        self.backoff = max(0.0, backoff)
        self.strict = strict
        self.fault_plan = fault_plan
        self.last_stats = SweepStats()

    def run(self, configs: Sequence[SystemConfig],
            run_fn: Optional[Callable[[SystemConfig], RunResult]] = None
            ) -> List[Optional[RunResult]]:
        """Simulate every config; return results in input order.

        ``run_fn`` is an instrumentation seam, not an alternate
        simulator: it must be observationally equivalent to
        :func:`run_once` for the same config, and picklable when
        ``jobs > 1``.
        """
        policy = SweepPolicy(retries=self.retries,
                             cell_timeout=self.cell_timeout,
                             backoff=self.backoff,
                             strict=self.strict,
                             fault_plan=self.fault_plan)
        spec = BackendSpec(name="auto", jobs=self.jobs)
        results, stats = execute_sweep(configs, spec=spec,
                                       policy=policy,
                                       cache=self.cache,
                                       run_fn=run_fn)
        self.last_stats = stats
        if self.strict and stats.manifest:
            raise SweepFailure(stats.manifest)
        return results


def run_sweep(configs: Sequence[SystemConfig],
              jobs: Optional[int] = 1,
              cache_dir=None) -> List[Optional[RunResult]]:
    """Deprecated one-shot wrapper; use
    :func:`repro.service.run_grid` instead."""
    warnings.warn(
        "run_sweep is deprecated; use repro.service.run_grid instead",
        DeprecationWarning, stacklevel=2)
    cache = None
    if cache_dir is not None:
        from repro.analysis.cache import ResultCache
        cache = ResultCache(cache_dir)
    jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
    results, stats = execute_sweep(
        configs, spec=BackendSpec(name="auto", jobs=jobs), cache=cache)
    if stats.manifest:
        raise SweepFailure(stats.manifest)
    return results
