"""Parallel sweep orchestration over independent simulations.

Every paper figure is a cross product of independent ``run_once`` calls
(workload x mechanism x system x core count), so wall-clock time scales
with the whole grid even though no cell depends on another.
:class:`SweepRunner` restores the obvious parallelism: it fans configs
out across supervised worker processes and memoizes finished cells in
an on-disk :class:`~repro.analysis.cache.ResultCache`, making every
sweep parallel, resumable, and fault tolerant.

Guarantees the figure drivers rely on:

* **Bit identity.**  The simulator is deterministic across processes
  (seeded RNGs, integer PWC indexing), so a sweep run with ``jobs=8``
  returns results identical field-for-field to the serial loop; the
  golden-stats tests would catch any divergence.
* **Order preservation.**  ``run(configs)`` returns one result per
  input config, in input order, regardless of completion order.
* **Dedup.**  Identical configs inside one sweep (e.g. a shared radix
  baseline) are simulated once and the result is shared.
* **Resumability.**  Results are persisted to the cache the moment they
  arrive (atomically, one file per cell), so an interrupted sweep —
  Ctrl-C, OOM-killed worker, CI timeout — leaves behind exactly the
  finished cells and a re-run simulates only the missing ones.
* **Fault isolation.**  Workers report per-cell outcomes (result or
  captured traceback), so one raising cell cannot poison its worker or
  the sweep.  The supervisor enforces a per-cell timeout, notices
  dead or wedged workers through their process sentinels, respawns
  them, and re-dispatches the lost cells with bounded retries and
  exponential backoff.  A cell that keeps failing is *quarantined*:
  the sweep completes every other cell and reports the casualties in
  ``last_stats.manifest`` (a :class:`FailureManifest`).  With
  ``strict=True`` (the default) the runner raises :class:`SweepFailure`
  at the end — after completing everything completable — for callers
  that need all-or-nothing; ``strict=False`` returns ``None`` in the
  quarantined cells' slots instead, which the figure drivers render as
  explicit holes.

Typical use::

    from repro.sim.sweep import SweepRunner, expand_grid

    runner = SweepRunner(jobs=4, cache_dir=".sweep-cache",
                         retries=1, cell_timeout=300.0, strict=False)
    results = runner.run(expand_grid(workloads=("bfs", "xs"),
                                     mechanisms=("radix", "ndpage")))
    print(runner.last_stats.summary())
    if runner.last_stats.manifest:
        print(runner.last_stats.manifest.format())

Fault injection (tests, CI chaos job) threads a
:class:`~repro.sim.faults.FaultPlan` through the worker entry point —
see :mod:`repro.sim.faults`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from itertools import product
from multiprocessing import connection
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sim.config import SystemConfig, cpu_config, ndp_config
from repro.sim.faults import FaultPlan, apply_cell_faults, cell_label
from repro.sim.runner import RunResult, run_once


def derive_seed(base_seed: int, *parts) -> int:
    """Deterministic per-cell seed from a base seed and cell identity.

    Stable across processes and runs (SHA-256, not ``hash()``), and
    independent of the cell's position in the sweep, so adding cells to
    a grid never changes the seeds of existing ones.
    """
    text = ":".join([str(base_seed)] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(workloads: Sequence[str] = ("rnd",),
                mechanisms: Sequence[str] = ("radix",),
                systems: Sequence[str] = ("ndp",),
                core_counts: Sequence[int] = (1,),
                refs_per_core: int = 5000,
                scale: float = 1.0,
                seed: int = 42,
                vary_seed: bool = False,
                **overrides) -> List[SystemConfig]:
    """Cross product of sweep axes as a flat config list.

    Cells are ordered workload-major (workload, mechanism, system,
    cores) to match the serial figure loops.  With ``vary_seed`` each
    cell gets a :func:`derive_seed`-derived seed instead of the shared
    base seed — deterministic, but distinct per cell.
    """
    configs = []
    for workload, mechanism, system, cores in product(
            workloads, mechanisms, systems, core_counts):
        cell_seed = (derive_seed(seed, workload, mechanism, system,
                                 cores)
                     if vary_seed else seed)
        factory = ndp_config if system == "ndp" else cpu_config
        configs.append(factory(
            workload=workload, mechanism=mechanism, num_cores=cores,
            refs_per_core=refs_per_core, scale=scale, seed=cell_seed,
            **overrides))
    return configs


# -- failure accounting --------------------------------------------------------

@dataclass
class CellFailure:
    """One quarantined cell: why the sweep gave up on it."""

    key: str          # cache key / canonical identity
    label: str        # human-readable cell_label()
    attempts: int     # dispatches spent before quarantine
    kind: str         # "error" | "timeout" | "worker-died"
    error: str        # last traceback / diagnosis

    def to_dict(self) -> Dict[str, object]:
        return {"key": self.key, "label": self.label,
                "attempts": self.attempts, "kind": self.kind,
                "error": self.error}


@dataclass
class FailureManifest:
    """The cells a sweep could not complete, with their post-mortems."""

    failures: List[CellFailure] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.failures)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __iter__(self):
        return iter(self.failures)

    def labels(self) -> List[str]:
        return [failure.label for failure in self.failures]

    def format(self) -> str:
        """Readable multi-line report (what the CLI prints)."""
        if not self.failures:
            return "failure manifest: empty"
        lines = [f"failure manifest: {len(self.failures)} cell(s) "
                 f"quarantined"]
        for failure in self.failures:
            lines.append(f"  {failure.label} [{failure.key[:12]}] — "
                         f"{failure.kind} after {failure.attempts} "
                         f"attempt(s)")
            tail = failure.error.strip().splitlines()
            if tail:
                lines.append(f"    {tail[-1]}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {"failed": len(self.failures),
                "failures": [f.to_dict() for f in self.failures]}


class SweepFailure(RuntimeError):
    """Strict-mode terminal error: raised *after* the sweep completed
    every healthy cell, carrying the manifest of the ones it didn't."""

    def __init__(self, manifest: FailureManifest):
        super().__init__(manifest.format())
        self.manifest = manifest


@dataclass
class SweepStats:
    """What the last :meth:`SweepRunner.run` actually did."""

    cells: int = 0            # configs requested
    unique: int = 0           # after in-sweep dedup
    cache_hits: int = 0       # unique cells served from disk
    simulated: int = 0        # unique cells actually run
    jobs: int = 1
    wall_seconds: float = 0.0
    references: int = 0       # simulated references (fresh cells only)
    failed: int = 0           # cells quarantined after exhausting retries
    retries: int = 0          # re-dispatches (any reason)
    timeouts: int = 0         # cell attempts killed for exceeding timeout
    worker_deaths: int = 0    # workers that died mid-cell (and respawns)
    manifest: FailureManifest = field(default_factory=FailureManifest)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.unique if self.unique else 0.0

    @property
    def refs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.references / self.wall_seconds

    def summary(self) -> str:
        text = (f"{self.cells} cells ({self.unique} unique): "
                f"{self.cache_hits} cached, {self.simulated} simulated "
                f"on {self.jobs} worker(s) in {self.wall_seconds:.2f} s"
                + (f" ({self.refs_per_sec:,.0f} refs/s)"
                   if self.simulated else ""))
        if self.failed or self.retries:
            text += (f" [{self.failed} quarantined, "
                     f"{self.retries} retried, "
                     f"{self.timeouts} timeouts, "
                     f"{self.worker_deaths} worker deaths]")
        return text


# -- supervised worker ---------------------------------------------------------

class _CellWork:
    """One unique cell's dispatch state inside the supervisor."""

    __slots__ = ("pos", "key", "config", "data", "label", "attempt",
                 "not_before")

    def __init__(self, pos: int, key: str, config: SystemConfig):
        self.pos = pos
        self.key = key
        self.config = config
        self.data = config.to_dict()
        self.label = cell_label(config)
        self.attempt = 0          # dispatches so far
        self.not_before = 0.0     # backoff gate (monotonic clock)


class _Worker:
    """A supervised worker process and its dispatch pipe."""

    __slots__ = ("conn", "process", "cell", "deadline")

    def __init__(self, conn, process):
        self.conn = conn
        self.process = process
        self.cell: Optional[_CellWork] = None
        self.deadline: Optional[float] = None


def _supervised_worker(conn, run_fn: Optional[Callable],
                       plan_text: Optional[str]) -> None:
    """Worker loop: receive ``(pos, config-dict, attempt)``, simulate,
    send back ``(pos, ok, result-or-traceback)``.

    Every exception is captured and reported per cell, so one bad cell
    cannot poison its worker or any other cell; abrupt process death
    (SIGKILL, segfault, OOM) is the supervisor's job to notice via the
    process sentinel.  Top-level so it pickles under every
    multiprocessing start method.
    """
    plan = FaultPlan.parse(plan_text) if plan_text else None
    fn = run_fn or run_once
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        pos, data, attempt = task
        try:
            config = SystemConfig.from_dict(data)
            if plan is not None:
                apply_cell_faults(plan, cell_label(config), attempt)
            outcome = (pos, True, fn(config))
        except Exception:
            outcome = (pos, False, traceback.format_exc())
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            return


def _ensure_picklable(run_fn: Callable) -> None:
    """Fail fast — before any worker is spawned — on a ``run_fn`` the
    pool could not ship (lambda, closure, bound local), instead of the
    opaque mid-sweep ``PicklingError`` the old pool loop produced."""
    try:
        pickle.dumps(run_fn)
    except Exception as exc:
        raise ValueError(
            f"run_fn {run_fn!r} is not picklable, so it cannot be "
            f"dispatched to worker processes (jobs > 1): pass a "
            f"top-level function, or run with jobs=1") from exc


class SweepRunner:
    """Run many independent configs, in parallel, through a cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` means ``os.cpu_count()``;
        ``1`` runs everything in-process (no pool, no pickling) —
        the default for library callers that just want the grid/dedup/
        cache semantics without multiprocessing.
    cache:
        A :class:`~repro.analysis.cache.ResultCache` (or any object
        with the same ``key``/``load``/``store`` surface, including
        their ``key=`` fast paths), or ``None`` to disable
        persistence.
    cache_dir:
        Convenience: build a ``ResultCache`` rooted here.  Ignored
        when ``cache`` is given.
    chunk_size:
        Unused since the supervised runner dispatches per cell (the
        per-cell outcome tracking the fault tolerance needs); accepted
        for backward compatibility.
    retries:
        Re-dispatches granted to a failing cell before it is
        quarantined (``retries=1`` means at most 2 attempts).
    cell_timeout:
        Seconds one cell attempt may run before its worker is killed
        and the cell re-dispatched (counts as a failure).  ``None``
        disables the timeout.  Enforced on the supervised pool path
        (``jobs > 1``); the in-process serial path cannot preempt a
        wedged cell.
    backoff:
        Base delay in seconds before re-dispatching a failed cell;
        doubles per subsequent attempt (exponential backoff).
    strict:
        ``True`` (default): raise :class:`SweepFailure` at the end of
        the sweep when any cell was quarantined — after completing and
        persisting every healthy cell.  ``False``: return ``None`` in
        the failed cells' result slots ("keep going" mode).
    fault_plan:
        A :class:`~repro.sim.faults.FaultPlan` (or its text form) to
        inject deterministic faults; defaults to the
        ``REPRO_FAULT_PLAN`` environment variable.  Production sweeps
        leave this unset.
    """

    def __init__(self, jobs: Optional[int] = 1, cache=None,
                 cache_dir=None, chunk_size: Optional[int] = None,
                 retries: int = 1,
                 cell_timeout: Optional[float] = None,
                 backoff: float = 0.25,
                 strict: bool = True,
                 fault_plan: Optional[Union[FaultPlan, str]] = None):
        if cache is None and cache_dir is not None:
            from repro.analysis.cache import ResultCache
            cache = ResultCache(cache_dir)
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.cache = cache
        self.chunk_size = chunk_size
        self.retries = max(0, retries)
        self.cell_timeout = cell_timeout
        self.backoff = max(0.0, backoff)
        self.strict = strict
        self.fault_plan = fault_plan
        self.last_stats = SweepStats()

    # -- identity ----------------------------------------------------

    def _key(self, config: SystemConfig) -> str:
        if self.cache is not None:
            return self.cache.key(config)
        return config.canonical_json()

    def _active_plan(self) -> Optional[FaultPlan]:
        plan = self.fault_plan
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        if plan is None:
            plan = FaultPlan.from_env()
        return plan if plan else None

    # -- execution ---------------------------------------------------

    def run(self, configs: Sequence[SystemConfig],
            run_fn: Optional[Callable[[SystemConfig], RunResult]] = None
            ) -> List[Optional[RunResult]]:
        """Simulate every config; return results in input order.

        Quarantined cells (see class docstring) yield ``None`` slots
        when ``strict=False``; with ``strict=True`` the sweep still
        completes every healthy cell (persisting them to the cache)
        and then raises :class:`SweepFailure` with the manifest.

        ``run_fn`` is an instrumentation seam, not an alternate
        simulator: it must be observationally equivalent to
        :func:`run_once` for the same config (a wrapper that counts,
        logs, or interrupts), because results are cached under the
        config's key alone — a ``run_fn`` computing *different*
        results would poison any cache this runner holds.  It must be
        a picklable top-level callable when ``jobs > 1``.  Tests use
        it to instrument and interrupt sweeps.
        """
        start = time.perf_counter()
        keys = [self._key(config) for config in configs]

        # In-sweep dedup: first occurrence wins.
        unique: Dict[str, SystemConfig] = {}
        for key, config in zip(keys, configs):
            unique.setdefault(key, config)

        results: Dict[str, RunResult] = {}
        if self.cache is not None:
            for key, config in unique.items():
                cached = self.cache.load(config, key=key)
                if cached is not None:
                    results[key] = cached

        missing = [(key, config) for key, config in unique.items()
                   if key not in results]
        stats = SweepStats(cells=len(configs), unique=len(unique),
                           cache_hits=len(unique) - len(missing),
                           simulated=len(missing), jobs=self.jobs)

        if missing:
            plan = self._active_plan()
            use_pool = self.jobs > 1 and (
                len(missing) > 1 or self.cell_timeout is not None)
            if use_pool:
                if run_fn is not None:
                    _ensure_picklable(run_fn)
                self._run_supervised(missing, results, run_fn, stats,
                                     plan)
            else:
                self._run_serial(missing, results, run_fn, stats,
                                 plan)

        stats.failed = len(stats.manifest)
        stats.references = sum(
            results[key].references for key, _ in missing
            if key in results)
        stats.wall_seconds = time.perf_counter() - start
        self.last_stats = stats
        if self.strict and stats.manifest:
            raise SweepFailure(stats.manifest)
        return [results.get(key) for key in keys]

    def _store(self, key: str, config: SystemConfig,
               result: RunResult) -> None:
        if self.cache is not None:
            self.cache.store(config, result, key=key)

    # -- serial path -------------------------------------------------

    def _run_serial(self, missing, results, run_fn, stats,
                    plan) -> None:
        """In-process execution with per-cell capture and retries.

        No timeout or kill recovery here — a wedged or killed cell
        takes the process with it; the pool path owns those.
        ``KeyboardInterrupt`` still aborts promptly (it is not an
        ``Exception``), leaving the cache holding the finished cells.
        """
        fn = run_fn or run_once
        for key, config in missing:
            label = cell_label(config)
            last_error = ""
            attempts = 0
            for attempt in range(1, self.retries + 2):
                attempts = attempt
                if attempt > 1:
                    stats.retries += 1
                    if self.backoff:
                        time.sleep(self.backoff * (2 ** (attempt - 2)))
                try:
                    if plan is not None:
                        apply_cell_faults(plan, label, attempt)
                    result = fn(config)
                except Exception:
                    last_error = traceback.format_exc()
                    continue
                results[key] = result
                self._store(key, config, result)
                break
            else:
                stats.manifest.failures.append(CellFailure(
                    key=key, label=label, attempts=attempts,
                    kind="error", error=last_error))

    # -- supervised pool path ----------------------------------------

    def _run_supervised(self, missing, results, run_fn, stats,
                        plan) -> None:
        """Dispatch cells to supervised workers; survive their faults.

        One pipe per worker; ``connection.wait`` multiplexes result
        pipes and process sentinels, so a worker death (SIGKILL,
        segfault, OOM kill) wakes the supervisor immediately.  Wedged
        workers are caught by the per-cell deadline and killed.  Lost
        or failed cells are re-dispatched with exponential backoff
        until their attempt budget runs out, then quarantined.
        """
        plan_text = plan.to_text() if plan is not None else None
        ready: deque = deque(
            _CellWork(pos, key, config)
            for pos, (key, config) in enumerate(missing))
        waiting: List[_CellWork] = []     # cells in backoff delay
        outstanding = len(missing)
        timeout = self.cell_timeout
        workers = [self._spawn(run_fn, plan_text)
                   for _ in range(min(self.jobs, len(missing)))]
        try:
            while outstanding:
                now = time.monotonic()
                if waiting:
                    due = [c for c in waiting if c.not_before <= now]
                    if due:
                        waiting = [c for c in waiting
                                   if c.not_before > now]
                        ready.extend(due)

                # Dispatch ready cells onto idle workers.
                for i, worker in enumerate(workers):
                    if worker.cell is not None or not ready:
                        continue
                    cell = ready.popleft()
                    cell.attempt += 1
                    if cell.attempt > 1:
                        stats.retries += 1
                    try:
                        worker.conn.send(
                            (cell.pos, cell.data, cell.attempt))
                    except (BrokenPipeError, OSError):
                        # Worker died while idle: the attempt never
                        # started, so it doesn't count against the cell.
                        cell.attempt -= 1
                        if cell.attempt > 1:
                            stats.retries -= 1
                        ready.appendleft(cell)
                        workers[i] = self._respawn(worker, run_fn,
                                                   plan_text)
                        continue
                    worker.cell = cell
                    worker.deadline = (now + timeout) if timeout else None

                busy = [w for w in workers if w.cell is not None]
                sleeps = [w.deadline - now for w in busy
                          if w.deadline is not None]
                sleeps += [c.not_before - now for c in waiting]
                wait_for = max(0.0, min(sleeps)) if sleeps else None
                if not busy:
                    # Everything is backoff-delayed; sleep it off.
                    if wait_for:
                        time.sleep(wait_for)
                    continue

                objects = [w.conn for w in busy]
                objects += [w.process.sentinel for w in busy]
                ready_objects = connection.wait(objects,
                                                timeout=wait_for)
                now = time.monotonic()
                for i, worker in enumerate(workers):
                    if worker.cell is None:
                        continue
                    if worker.conn in ready_objects:
                        outstanding -= self._collect(worker, results,
                                                     waiting, stats,
                                                     now)
                        if worker.cell is not None:
                            # recv failed: the worker died mid-send.
                            outstanding -= self._lost(
                                worker, "worker-died", waiting, stats,
                                now)
                            workers[i] = self._respawn(worker, run_fn,
                                                       plan_text)
                    elif worker.process.sentinel in ready_objects:
                        # Dead worker; drain a result it may have
                        # flushed before dying.
                        if worker.conn.poll():
                            outstanding -= self._collect(
                                worker, results, waiting, stats, now)
                        if worker.cell is not None:
                            outstanding -= self._lost(
                                worker, "worker-died", waiting, stats,
                                now)
                        workers[i] = self._respawn(worker, run_fn,
                                                   plan_text)
                    elif (worker.deadline is not None
                          and now >= worker.deadline):
                        stats.timeouts += 1
                        outstanding -= self._lost(
                            worker, "timeout", waiting, stats, now)
                        workers[i] = self._respawn(worker, run_fn,
                                                   plan_text,
                                                   kill=True)
        finally:
            self._shutdown(workers)

    def _collect(self, worker: _Worker, results, waiting, stats,
                 now: float) -> int:
        """Receive one outcome; returns settled cells (0 or 1).

        Leaves ``worker.cell`` set when the recv itself failed (the
        caller then treats the worker as dead).
        """
        try:
            _pos, ok, payload = worker.conn.recv()
        except (EOFError, OSError):
            return 0
        cell = worker.cell
        worker.cell = None
        worker.deadline = None
        if ok:
            results[cell.key] = payload
            self._store(cell.key, cell.config, payload)
            return 1
        return self._failed(cell, "error", payload, waiting, stats,
                            now)

    def _lost(self, worker: _Worker, kind: str, waiting, stats,
              now: float) -> int:
        """Account a cell whose worker died or was killed for timeout."""
        cell = worker.cell
        worker.cell = None
        worker.deadline = None
        if kind == "timeout":
            error = (f"cell exceeded cell_timeout="
                     f"{self.cell_timeout}s on attempt "
                     f"{cell.attempt}; worker killed")
        else:
            stats.worker_deaths += 1
            error = (f"worker died (exit code "
                     f"{worker.process.exitcode}) while running "
                     f"attempt {cell.attempt}")
        return self._failed(cell, kind, error, waiting, stats, now)

    def _failed(self, cell: _CellWork, kind: str, error: str, waiting,
                stats, now: float) -> int:
        """Retry or quarantine a failed attempt; returns settled cells."""
        if cell.attempt >= self.retries + 1:
            stats.manifest.failures.append(CellFailure(
                key=cell.key, label=cell.label,
                attempts=cell.attempt, kind=kind, error=error))
            return 1
        cell.not_before = now + self.backoff * (2 ** (cell.attempt - 1))
        waiting.append(cell)
        return 0

    # -- worker lifecycle --------------------------------------------

    def _spawn(self, run_fn, plan_text) -> _Worker:
        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_supervised_worker, args=(child, run_fn, plan_text),
            daemon=True)
        process.start()
        child.close()
        return _Worker(parent, process)

    def _respawn(self, worker: _Worker, run_fn, plan_text,
                 kill: bool = False) -> _Worker:
        if kill and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
        worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        return self._spawn(run_fn, plan_text)

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass


def run_sweep(configs: Sequence[SystemConfig],
              jobs: Optional[int] = 1,
              cache_dir=None) -> List[Optional[RunResult]]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache_dir=cache_dir).run(configs)
