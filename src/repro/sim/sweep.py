"""Parallel sweep orchestration over independent simulations.

Every paper figure is a cross product of independent ``run_once`` calls
(workload x mechanism x system x core count), so wall-clock time scales
with the whole grid even though no cell depends on another.
:class:`SweepRunner` restores the obvious parallelism: it fans configs
out across a ``multiprocessing`` pool and memoizes finished cells in an
on-disk :class:`~repro.analysis.cache.ResultCache`, making every sweep
both parallel and resumable.

Guarantees the figure drivers rely on:

* **Bit identity.**  The simulator is deterministic across processes
  (seeded RNGs, integer PWC indexing), so a sweep run with ``jobs=8``
  returns results identical field-for-field to the serial loop; the
  golden-stats tests would catch any divergence.
* **Order preservation.**  ``run(configs)`` returns one result per
  input config, in input order, regardless of completion order.
* **Dedup.**  Identical configs inside one sweep (e.g. a shared radix
  baseline) are simulated once and the result is shared.
* **Resumability.**  Results are persisted to the cache the moment they
  arrive (atomically, one file per cell), so an interrupted sweep —
  Ctrl-C, OOM-killed worker, CI timeout — leaves behind exactly the
  finished cells and a re-run simulates only the missing ones.
* **Cheap dispatch.**  Configs cross the process boundary as plain
  dicts (``SystemConfig.to_dict``) in chunks, so large grids don't
  serialize heavyweight objects per task; results stream back per
  chunk via ``imap_unordered``.

Typical use::

    from repro.sim.sweep import SweepRunner, expand_grid

    runner = SweepRunner(jobs=4, cache_dir=".sweep-cache")
    results = runner.run(expand_grid(workloads=("bfs", "xs"),
                                     mechanisms=("radix", "ndpage")))
    print(runner.last_stats.summary())
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from itertools import product
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.config import SystemConfig, cpu_config, ndp_config
from repro.sim.runner import RunResult, run_once

#: A worker task: (position-in-sweep, serialized config) pairs.
_Cell = Tuple[int, dict]


def _run_cells(task: Tuple[Optional[Callable], List[_Cell]]
               ) -> List[Tuple[int, RunResult]]:
    """Worker entry point: simulate one chunk of cells.

    Top-level so it pickles under every multiprocessing start method.
    Configs arrive as plain dicts and are re-hydrated here.
    """
    run_fn, cells = task
    fn = run_fn or run_once
    return [(pos, fn(SystemConfig.from_dict(data)))
            for pos, data in cells]


def derive_seed(base_seed: int, *parts) -> int:
    """Deterministic per-cell seed from a base seed and cell identity.

    Stable across processes and runs (SHA-256, not ``hash()``), and
    independent of the cell's position in the sweep, so adding cells to
    a grid never changes the seeds of existing ones.
    """
    text = ":".join([str(base_seed)] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def expand_grid(workloads: Sequence[str] = ("rnd",),
                mechanisms: Sequence[str] = ("radix",),
                systems: Sequence[str] = ("ndp",),
                core_counts: Sequence[int] = (1,),
                refs_per_core: int = 5000,
                scale: float = 1.0,
                seed: int = 42,
                vary_seed: bool = False,
                **overrides) -> List[SystemConfig]:
    """Cross product of sweep axes as a flat config list.

    Cells are ordered workload-major (workload, mechanism, system,
    cores) to match the serial figure loops.  With ``vary_seed`` each
    cell gets a :func:`derive_seed`-derived seed instead of the shared
    base seed — deterministic, but distinct per cell.
    """
    configs = []
    for workload, mechanism, system, cores in product(
            workloads, mechanisms, systems, core_counts):
        cell_seed = (derive_seed(seed, workload, mechanism, system,
                                 cores)
                     if vary_seed else seed)
        factory = ndp_config if system == "ndp" else cpu_config
        configs.append(factory(
            workload=workload, mechanism=mechanism, num_cores=cores,
            refs_per_core=refs_per_core, scale=scale, seed=cell_seed,
            **overrides))
    return configs


@dataclass
class SweepStats:
    """What the last :meth:`SweepRunner.run` actually did."""

    cells: int = 0            # configs requested
    unique: int = 0           # after in-sweep dedup
    cache_hits: int = 0       # unique cells served from disk
    simulated: int = 0        # unique cells actually run
    jobs: int = 1
    wall_seconds: float = 0.0
    references: int = 0       # simulated references (fresh cells only)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.unique if self.unique else 0.0

    @property
    def refs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.references / self.wall_seconds

    def summary(self) -> str:
        return (f"{self.cells} cells ({self.unique} unique): "
                f"{self.cache_hits} cached, {self.simulated} simulated "
                f"on {self.jobs} worker(s) in {self.wall_seconds:.2f} s"
                + (f" ({self.refs_per_sec:,.0f} refs/s)"
                   if self.simulated else ""))


class SweepRunner:
    """Run many independent configs, in parallel, through a cache.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` means ``os.cpu_count()``;
        ``1`` runs everything in-process (no pool, no pickling) —
        the default for library callers that just want the grid/dedup/
        cache semantics without multiprocessing.
    cache:
        A :class:`~repro.analysis.cache.ResultCache` (or any object
        with the same ``key``/``load``/``store`` surface, including
        their ``key=`` fast paths), or ``None`` to disable
        persistence.
    cache_dir:
        Convenience: build a ``ResultCache`` rooted here.  Ignored
        when ``cache`` is given.
    chunk_size:
        Cells per worker task.  ``None`` picks a size that gives each
        worker a few tasks (amortizes IPC without starving the pool).
    """

    def __init__(self, jobs: Optional[int] = 1, cache=None,
                 cache_dir=None, chunk_size: Optional[int] = None):
        if cache is None and cache_dir is not None:
            from repro.analysis.cache import ResultCache
            cache = ResultCache(cache_dir)
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.cache = cache
        self.chunk_size = chunk_size
        self.last_stats = SweepStats()

    # -- identity ----------------------------------------------------

    def _key(self, config: SystemConfig) -> str:
        if self.cache is not None:
            return self.cache.key(config)
        return config.canonical_json()

    # -- execution ---------------------------------------------------

    def run(self, configs: Sequence[SystemConfig],
            run_fn: Optional[Callable[[SystemConfig], RunResult]] = None
            ) -> List[RunResult]:
        """Simulate every config; return results in input order.

        ``run_fn`` is an instrumentation seam, not an alternate
        simulator: it must be observationally equivalent to
        :func:`run_once` for the same config (a wrapper that counts,
        logs, or interrupts), because results are cached under the
        config's key alone — a ``run_fn`` computing *different*
        results would poison any cache this runner holds.  It must be
        a picklable top-level callable when ``jobs > 1``.  Tests use
        it to instrument and interrupt sweeps.
        """
        start = time.perf_counter()
        keys = [self._key(config) for config in configs]

        # In-sweep dedup: first occurrence wins.
        unique: Dict[str, SystemConfig] = {}
        for key, config in zip(keys, configs):
            unique.setdefault(key, config)

        results: Dict[str, RunResult] = {}
        if self.cache is not None:
            for key, config in unique.items():
                cached = self.cache.load(config, key=key)
                if cached is not None:
                    results[key] = cached

        missing = [(key, config) for key, config in unique.items()
                   if key not in results]
        stats = SweepStats(cells=len(configs), unique=len(unique),
                           cache_hits=len(unique) - len(missing),
                           simulated=len(missing), jobs=self.jobs)

        if missing:
            if self.jobs == 1 or len(missing) == 1:
                self._run_serial(missing, results, run_fn)
            else:
                self._run_pool(missing, results, run_fn)

        stats.references = sum(
            results[key].references for key, _ in missing
            if key in results)
        stats.wall_seconds = time.perf_counter() - start
        self.last_stats = stats
        return [results[key] for key in keys]

    def _store(self, key: str, config: SystemConfig,
               result: RunResult) -> None:
        if self.cache is not None:
            self.cache.store(config, result, key=key)

    def _run_serial(self, missing, results, run_fn) -> None:
        fn = run_fn or run_once
        for key, config in missing:
            result = fn(config)
            results[key] = result
            self._store(key, config, result)

    def _run_pool(self, missing, results, run_fn) -> None:
        cells: List[_Cell] = [
            (pos, config.to_dict())
            for pos, (_, config) in enumerate(missing)]
        chunk = self.chunk_size or max(
            1, min(8, len(cells) // (self.jobs * 4) or 1))
        tasks = [(run_fn, cells[i:i + chunk])
                 for i in range(0, len(cells), chunk)]
        workers = min(self.jobs, len(tasks))
        # Persist each chunk as it lands so an interrupt (Ctrl-C, CI
        # timeout) keeps everything finished so far; the pool context
        # manager tears workers down on the way out either way.
        with multiprocessing.Pool(processes=workers) as pool:
            for done in pool.imap_unordered(_run_cells, tasks):
                for pos, result in done:
                    key, config = missing[pos]
                    results[key] = result
                    self._store(key, config, result)


def run_sweep(configs: Sequence[SystemConfig],
              jobs: Optional[int] = 1,
              cache_dir=None) -> List[RunResult]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache_dir=cache_dir).run(configs)
