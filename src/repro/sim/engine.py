"""Multi-core event engine.

Cores are advanced in global time order through a binary heap, so
accesses from different cores interleave at the shared DRAM banks in
the order they would actually issue — the queueing this produces is the
source of the paper's core-count scaling results (Fig. 6).  Ties are
broken by core id for full determinism.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.sim.core_model import Core


class SimulationEngine:
    """Runs a set of cores to completion of their reference streams."""

    def __init__(self, cores: Sequence[Core]):
        if not cores:
            raise ValueError("need at least one core")
        self.cores: List[Core] = list(cores)
        self.global_cycles = 0.0

    def run(self) -> float:
        """Run every core's stream to exhaustion; return global cycles.

        Global cycles is the finish time of the slowest core, i.e. the
        parallel-region execution time used for multi-core speedups.
        """
        heap = [(0.0, core.core_id) for core in self.cores]
        heapq.heapify(heap)
        by_id = {core.core_id: core for core in self.cores}
        while heap:
            now, core_id = heapq.heappop(heap)
            next_ready = by_id[core_id].step(now)
            if next_ready is not None:
                heapq.heappush(heap, (next_ready, core_id))
        self.global_cycles = max(core.stats.cycles for core in self.cores)
        return self.global_cycles
