"""Multi-core event engine.

Cores are advanced in global time order through a binary heap, so
accesses from different cores interleave at the shared DRAM banks in
the order they would actually issue — the queueing this produces is the
source of the paper's core-count scaling results (Fig. 6).  Ties are
broken by core id for full determinism.

A single-core run needs no interleaving at all: the heap degenerates to
pop/push of the same entry, so the engine instead drives the core's
chunked fast path (:meth:`repro.sim.core_model.Core.step_chunk`) in a
plain loop — same simulation, one Python frame per reference chunk
instead of heap traffic plus a ``step`` call per reference.
"""

from __future__ import annotations

import gc
import heapq
from typing import List, Sequence

from repro.sim.core_model import Core


class SimulationEngine:
    """Runs a set of cores to completion of their reference streams."""

    def __init__(self, cores: Sequence[Core]):
        if not cores:
            raise ValueError("need at least one core")
        self.cores: List[Core] = list(cores)
        self.global_cycles = 0.0

    def run(self) -> float:
        """Run every core's stream to exhaustion; return global cycles.

        Global cycles is the finish time of the slowest core, i.e. the
        parallel-region execution time used for multi-core speedups.
        """
        # The simulation loop allocates short-lived tuples at a rate
        # that makes the cyclic collector's gen-0 sweeps a measurable
        # tax, while producing no reference cycles of its own —
        # everything is reclaimed by refcounting.  Pause the collector
        # for the loop, restoring the caller's setting afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run()
        finally:
            if gc_was_enabled:
                gc.enable()
        self.global_cycles = max(core.stats.cycles for core in self.cores)
        return self.global_cycles

    def _run(self) -> None:
        """Dispatch to the right loop; subclasses (the multi-process
        scheduler engine) override this and inherit the gc pause and
        the global-cycles aggregation around it."""
        if len(self.cores) == 1:
            self._run_single(self.cores[0])
        else:
            self._run_heap()

    def _run_single(self, core: Core) -> None:
        """Heap-free single-core loop over the chunked fast path."""
        now = 0.0
        if core._chunks is not None:
            while True:
                next_ready = core.step_chunk(now)
                if next_ready is None:
                    return
                now = next_ready
        while True:  # legacy per-item stream
            next_ready = core.step(now)
            if next_ready is None:
                return
            now = next_ready

    def _run_heap(self) -> None:
        heap = [(0.0, core.core_id) for core in self.cores]
        heapq.heapify(heap)
        by_id = {core.core_id: core for core in self.cores}
        while heap:
            now, core_id = heapq.heappop(heap)
            next_ready = by_id[core_id].step(now)
            if next_ready is not None:
                heapq.heappush(heap, (next_ready, core_id))
