"""Multi-core run-ahead event engine.

Cores are advanced in global time order, so accesses from different
cores interleave at the shared DRAM banks in the order they would
actually issue — the queueing this produces is the source of the
paper's core-count scaling results (Fig. 6).  Ties are broken by core
id for full determinism.

The classic way to drive that order is a binary heap popped once per
reference.  This engine instead *runs ahead* (Sniper-style interval
batching): the minimum-time core can safely execute references back to
back for as long as its clock stays below the second-smallest event
key — every reference it issues in that window precedes the next
other-core event in global time, ties included, so the interleaving at
the shared DRAM banks is bit-identical by construction.  Each pop
therefore drives :meth:`repro.sim.core_model.Core.step_until` to the
second-smallest key instead of calling ``step`` once, and the common
reference runs in the core's inlined chunk loop rather than crossing a
heap + dict + method-call boundary.

Scheduling structure by core count:

* 1 core needs no interleaving at all: one ``step_until`` call with an
  infinite bound consumes the whole stream;
* 2..``LINEAR_SCAN_MAX`` cores use a linear-scan array of next-ready
  times — finding min and runner-up in one pass over <= 8 floats is
  cheaper than heap maintenance at small N, with the same
  tie-break-by-core-id order;
* larger machines keep a heap, popping the min and peeking ``heap[0]``
  for the run-ahead deadline.

The original reference-at-a-time heap loop is retained as a *debug
reference engine*: set ``REPRO_REFERENCE_ENGINE=1`` to force it (the
equivalence tests in tests/sim/test_engine.py pin both paths to the
same golden statistics).
"""

from __future__ import annotations

import gc
import heapq
import os
from math import inf, nextafter
from typing import List, Sequence

from repro.sim.core_model import Core

#: Largest core/slot count driven by the linear-scan scheduler; above
#: this the run-ahead loop keeps a heap.
LINEAR_SCAN_MAX = 8

#: Environment switch forcing the reference-at-a-time heap engine.
REFERENCE_ENGINE_ENV = "REPRO_REFERENCE_ENGINE"


def reference_engine_enabled() -> bool:
    """True when the debug reference engine is forced via the env var."""
    return os.environ.get(REFERENCE_ENGINE_ENV, "") not in ("", "0")


def scan_min2(ready):
    """Minimum and runner-up of a next-ready array, in one pass.

    ``ready`` is indexed in id order, so strict comparisons reproduce
    the heap's tie-break-by-id: returns ``(best_i, best_t, sec_i,
    sec_t)`` with ``(best_t, best_i) < (sec_t, sec_i)`` in event
    order.  Requires at least two entries below +inf (finished
    entries park there); both run-ahead linear loops share this scan
    so the tie-break logic exists exactly once.
    """
    best_i = 0
    best_t = ready[0]
    sec_i = -1
    sec_t = inf
    for i in range(1, len(ready)):
        t = ready[i]
        if t < best_t:
            sec_i = best_i
            sec_t = best_t
            best_i = i
            best_t = t
        elif t < sec_t:
            sec_i = i
            sec_t = t
    return best_i, best_t, sec_i, sec_t


def runahead_bound(deadline: float, min_id: int, next_id: int) -> float:
    """Exclusive issue-time bound for the min core's run-ahead batch.

    The popped core may execute a reference issued at time ``t`` while
    ``(t, min_id) < (deadline, next_id)`` in event order.  When the
    core wins the id tie-break, that inequality holds *at* the deadline
    too, so the exclusive bound is the next representable float above
    it — one comparison per reference inside the core loop either way.
    """
    if min_id < next_id:
        return nextafter(deadline, inf)
    return deadline


def drive_linear(count, advance) -> None:
    """Run-ahead driver over a linear-scan array of next-ready keys.

    The one skeleton both engines' small-N loops share:
    ``advance(i, now, bound)`` runs entity ``i`` (a core, or a
    scheduler slot) ahead from ``now`` to ``bound`` and returns its
    next event key, or None once it has nothing left.  Entities must
    be indexed in id order so the scan's index tie-break reproduces
    the heap's id tie-break; finished entities park at +inf, and the
    last survivor is driven to completion with an infinite bound.
    """
    ready = [0.0] * count
    alive = count
    while alive > 1:
        best_i, best_t, sec_i, sec_t = scan_min2(ready)
        bound = runahead_bound(sec_t, best_i, sec_i)
        nxt = advance(best_i, best_t, bound)
        if nxt is None:
            ready[best_i] = inf
            alive -= 1
        else:
            ready[best_i] = nxt
    if alive:
        for i, t in enumerate(ready):
            if t != inf:
                while t is not None:
                    t = advance(i, t, inf)
                return


def drive_heap(ids, advance) -> None:
    """Run-ahead driver under a heap (entity counts past the scan
    window): pop the min, peek ``heap[0]`` for the deadline.  Same
    ``advance`` contract as :func:`drive_linear`, keyed by entity id.
    """
    heap = [(0.0, entity_id) for entity_id in ids]
    heapq.heapify(heap)
    while heap:
        now, entity_id = heapq.heappop(heap)
        if heap:
            sec_t, sec_id = heap[0]
            bound = runahead_bound(sec_t, entity_id, sec_id)
        else:
            bound = inf
        nxt = advance(entity_id, now, bound)
        if nxt is not None:
            heapq.heappush(heap, (nxt, entity_id))


class SimulationEngine:
    """Runs a set of cores to completion of their reference streams."""

    def __init__(self, cores: Sequence[Core]):
        if not cores:
            raise ValueError("need at least one core")
        self.cores: List[Core] = list(cores)
        self.global_cycles = 0.0

    def run(self) -> float:
        """Run every core's stream to exhaustion; return global cycles.

        Global cycles is the finish time of the slowest core, i.e. the
        parallel-region execution time used for multi-core speedups.
        """
        # The simulation loop allocates short-lived tuples at a rate
        # that makes the cyclic collector's gen-0 sweeps a measurable
        # tax, while producing no reference cycles of its own —
        # everything is reclaimed by refcounting.  Pause the collector
        # for the loop, restoring the caller's setting afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run()
        finally:
            if gc_was_enabled:
                gc.enable()
        self.global_cycles = max(core.stats.cycles for core in self.cores)
        return self.global_cycles

    def _run(self) -> None:
        """Dispatch to the right loop; subclasses (the multi-process
        scheduler engine) override this and inherit the gc pause and
        the global-cycles aggregation around it."""
        if reference_engine_enabled():
            # Debug: one reference per step() — also for a single core,
            # so the env var always bypasses the chunked fast path.
            self._run_heap()
        elif len(self.cores) == 1:
            self.cores[0].step_until(0.0, inf)
        elif len(self.cores) <= LINEAR_SCAN_MAX:
            self._run_linear()
        else:
            self._run_heap_runahead()

    def _run_linear(self) -> None:
        """Run-ahead over a linear-scan array of next-ready cores,
        advanced through their coroutines' direct ``send``."""
        cores = sorted(self.cores, key=lambda core: core.core_id)
        senders = [core.runner_send() for core in cores]

        def advance(i, now, bound):
            return senders[i]((now, bound, None))

        drive_linear(len(cores), advance)

    def _run_heap_runahead(self) -> None:
        """Run-ahead under a heap (core counts past the scan window)."""
        send_by_id = {core.core_id: core.runner_send()
                      for core in self.cores}

        def advance(core_id, now, bound):
            return send_by_id[core_id]((now, bound, None))

        drive_heap(sorted(send_by_id), advance)

    def _run_heap(self) -> None:
        """Debug reference engine: one heap pop per reference.

        The run-ahead loops must match this bit for bit (pinned by the
        equivalence tests); it survives behind
        ``REPRO_REFERENCE_ENGINE=1`` precisely so that claim stays
        checkable.
        """
        heap = [(0.0, core.core_id) for core in self.cores]
        heapq.heapify(heap)
        by_id = {core.core_id: core for core in self.cores}
        while heap:
            now, core_id = heapq.heappop(heap)
            next_ready = by_id[core_id].step(now)
            if next_ready is not None:
                heapq.heappush(heap, (next_ready, core_id))
