"""System assembly: cores + MMUs + page table + hierarchy from a config.

``System`` wires one simulated machine according to a
:class:`~repro.sim.config.SystemConfig`: the platform's memory hierarchy
(CPU vs NDP from Table I), one shared page table and OS built from the
mechanism spec, and per-core TLBs / PWCs / walkers / MMUs over shared
DRAM — the multithreaded, shared-dataset execution model the paper
evaluates.

With ``config.tenants > 1`` the same machine is multiprogrammed: each
tenant process gets its own workload stream, page table and OS view
over the *shared* frame allocator, every core slot carries one
execution context per tenant sharing the slot's ASID-tagged TLBs and
PWCs, and a :class:`~repro.sim.scheduler.ScheduledEngine` time-slices
the contexts with the configured quantum.  ``tenants == 1`` is exactly
the single-address-space assembly, bit for bit.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.mechanisms import MechanismSpec, get_mechanism
from repro.mem.dram import DDR4_2400, HBM2
from repro.mem.hierarchy import (
    MemoryHierarchy,
    build_cpu_hierarchy,
    build_ndp_hierarchy,
)
from repro.mmu.mmu import Mmu
from repro.mmu.pwc import PwcSet
from repro.mmu.tlb import Tlb, TlbHierarchy
from repro.mmu.walker import PageTableWalker
from repro.sim.config import SYSTEM_NDP, SystemConfig
from repro.sim.core_model import Core
from repro.sim.engine import SimulationEngine
from repro.sim.scheduler import (
    ScheduledEngine,
    SlotSchedule,
    TenantCoordinator,
    quantum_chunks,
    tenant_quantum,
    tenant_seed,
)
from repro.sim.topology import NumaFrameAllocator, NumaTopology
from repro.vm.address import HUGE_PAGE_SHIFT, PAGE_SHIFT
from repro.vm.base import PageTable
from repro.vm.frames import FrameAllocator
from repro.vm.os_model import OSMemoryManager
from repro.workloads.base import CHUNK_REFS, Workload
from repro.workloads.registry import make_workload


@dataclass
class Tenant:
    """One co-running process: private address space, shared frames."""

    asid: int
    workload_key: str
    workload: Workload
    page_table: PageTable
    os: OSMemoryManager


class System:
    """One fully assembled simulated machine, ready to run."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.spec: MechanismSpec = get_mechanism(config.mechanism)
        self.tenants: List[Tenant] = []
        self.scheduler_stats = None
        # NUMA topology: None on the flat single-node machine, which
        # then assembles byte-identically to earlier releases.
        self.topology: Optional[NumaTopology] = (
            NumaTopology.from_config(config)
            if config.numa.nodes > 1 else None)
        if config.tenants > 1:
            self._init_tenants()
            return
        # tenant_workloads overrides ``workload`` for every tenant —
        # including the degenerate 1-tenant schedule, so a config runs
        # the workload it serializes as (grids sweep tenant counts
        # without special-casing the 1-tenant cell).
        workload_key = (config.tenant_workloads[0]
                        if config.tenant_workloads else config.workload)
        self.workload = make_workload(
            workload_key, scale=config.scale, seed=config.seed)
        self.allocator = self._build_allocator()
        self.page_table = self.spec.build_table(self.allocator)
        self.os = OSMemoryManager(
            self.allocator, self.page_table,
            policy=self.spec.paging_policy, costs=config.fault_costs,
            thp_promotion_fraction=config.thp_promotion_fraction)
        self.hierarchy = self._build_hierarchy()
        # When the warmup replays the exact ROI stream (the default),
        # the chunks materialized for prefaulting are handed to the
        # cores afterwards, so each stream is generated once.  Bounded
        # so huge sweeps do not hold every reference in memory.
        self._replay_chunks: Optional[List[List[tuple]]] = None
        warmup = (config.refs_per_core if config.warmup_refs is None
                  else config.warmup_refs)
        if (warmup == config.refs_per_core
                and config.refs_per_core * config.num_cores <= 4_000_000):
            self._replay_chunks = [[] for _ in range(config.num_cores)]
        self.pwc_sets: List[Optional[PwcSet]] = []
        self.mmus: List[Mmu] = []
        self.cores: List[Core] = []
        self._prefault()
        for core_id in range(config.num_cores):
            self._add_core(core_id)
        self.engine = SimulationEngine(self.cores)

    def _prefault(self) -> None:
        """Untimed warmup: demand-page each core's early footprint.

        Runs every core's first ``warmup_refs`` references through the
        OS fault path only — no cycles are charged, but allocator and
        page-table state (huge-page placement, contiguity consumption,
        ECH growth, reclaim under pressure) fully materialize, exactly
        like the paper's untimed initialization phase.  Cores are
        interleaved so their allocations interleave too.
        """
        cfg = self.config
        warmup = (cfg.refs_per_core if cfg.warmup_refs is None
                  else cfg.warmup_refs)
        if warmup <= 0:
            return
        # Like the run loop, prefaulting allocates heavily and builds
        # no reference cycles; pause the cyclic collector for it.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._prefault_inner(warmup)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _prefault_inner(self, warmup: int) -> None:
        cfg = self.config
        # Chunked consumption with a 256-reference round-robin quantum:
        # allocation order (and with it frame placement / contiguity
        # consumption) is identical to stepping the per-item streams.
        record = self._replay_chunks
        if record is not None:
            def recording(core_id):
                for chunk in self.workload.stream_chunks(core_id, warmup):
                    record[core_id].append(chunk)
                    yield chunk
            chunk_iters = [
                recording(core_id) for core_id in range(cfg.num_cores)
            ]
        else:
            # Prefault only reads addresses: skip the VPN/line-array
            # materialization the cores would need (no replay here —
            # the ROI regenerates its own, fully decorated, streams).
            chunk_iters = [
                self.workload.stream_chunks(core_id, warmup,
                                            probe_keys=False)
                for core_id in range(cfg.num_cores)
            ]
        buffers: List[List[int]] = [[] for _ in range(cfg.num_cores)]
        positions = [0] * cfg.num_cores
        ensure_mapped = self.os.ensure_mapped
        os_stats = self.os.stats
        # Repeat touches of an already-faulted page are no-ops, so they
        # can be skipped via a seen-set — *until* the first reclaim:
        # once the OS starts evicting, a previously mapped page may need
        # re-faulting and every touch must go through the full path
        # again (seed-identical behaviour under memory pressure).
        seen: Optional[set] = set()
        active = list(range(cfg.num_cores))
        while active:
            still_active = []
            for core_id in active:
                addrs = buffers[core_id]
                pos = positions[core_id]
                quota = 256
                exhausted = False
                while quota:
                    if pos >= len(addrs):
                        nxt = next(chunk_iters[core_id], None)
                        if nxt is None:
                            exhausted = True
                            break
                        addrs = buffers[core_id] = nxt[0]
                        pos = 0
                    stop = pos + quota
                    if stop > len(addrs):
                        stop = len(addrs)
                    if seen is not None:
                        index = pos
                        while index < stop:
                            vaddr = addrs[index]
                            index += 1
                            page = vaddr >> PAGE_SHIFT
                            if page in seen:
                                continue
                            ensure_mapped(vaddr, site=core_id)
                            seen.add(page)
                            if os_stats.reclaims:
                                seen = None  # pressure: exact from here
                                break
                        if seen is None:
                            for vaddr in addrs[index:stop]:
                                ensure_mapped(vaddr, site=core_id)
                    else:
                        for vaddr in addrs[pos:stop]:
                            ensure_mapped(vaddr, site=core_id)
                    quota -= stop - pos
                    pos = stop
                positions[core_id] = pos
                if not exhausted:
                    still_active.append(core_id)
            active = still_active
        # Warmup fault work is setup, not ROI: reset the OS counters.
        self.os.stats = type(self.os.stats)()

    def _build_allocator(self):
        """Flat allocator, or the per-node NUMA facade over it."""
        cfg = self.config
        if self.topology is None:
            return FrameAllocator(
                cfg.physical_bytes,
                fragmentation=cfg.boot_fragmentation)
        return NumaFrameAllocator(
            self.topology, cfg.numa,
            fragmentation=cfg.boot_fragmentation)

    def _build_hierarchy(self) -> MemoryHierarchy:
        cfg = self.config
        numa_nodes = 1
        numa_penalty = None
        if self.topology is not None:
            numa_nodes = self.topology.nodes
            numa_penalty = self.topology.penalty_rows()
        if cfg.system == SYSTEM_NDP:
            return build_ndp_hierarchy(
                cfg.num_cores, HBM2,
                l1_size=cfg.l1.size, l1_assoc=cfg.l1.associativity,
                l1_latency=cfg.l1.latency,
                numa_nodes=numa_nodes, numa_penalty=numa_penalty)
        return build_cpu_hierarchy(
            cfg.num_cores, DDR4_2400,
            l1_size=cfg.l1.size, l1_assoc=cfg.l1.associativity,
            l1_latency=cfg.l1.latency,
            l2_size=cfg.l2.size, l2_assoc=cfg.l2.associativity,
            l2_latency=cfg.l2.latency,
            l3_per_core=cfg.l3_per_core.size,
            l3_assoc=cfg.l3_per_core.associativity,
            l3_latency=cfg.l3_per_core.latency,
            numa_nodes=numa_nodes, numa_penalty=numa_penalty)

    def _build_tlbs(self, core_id: int) -> TlbHierarchy:
        t = self.config.tlb
        return TlbHierarchy(
            l1_small=Tlb(f"L1-DTLB{core_id}", t.l1_small_entries,
                         t.l1_small_assoc, t.l1_small_latency,
                         page_shift=PAGE_SHIFT),
            l1_huge=Tlb(f"L1-2M-TLB{core_id}", t.l1_huge_entries,
                        t.l1_huge_assoc, t.l1_small_latency,
                        page_shift=HUGE_PAGE_SHIFT),
            l2=Tlb(f"L2-TLB{core_id}", t.l2_entries, t.l2_assoc,
                   t.l2_latency, page_shift=PAGE_SHIFT),
        )

    def _add_core(self, core_id: int) -> None:
        cfg = self.config
        tlbs = self._build_tlbs(core_id)
        if self.spec.pwc_levels:
            pwcs: Optional[PwcSet] = PwcSet(
                self.spec.pwc_levels, entries=cfg.pwc.entries,
                associativity=cfg.pwc.associativity,
                latency=cfg.pwc.latency)
        else:
            pwcs = None
        walker = PageTableWalker(
            self.page_table, self.hierarchy, core_id,
            pwcs=pwcs, bypass=self.spec.build_bypass())
        mmu = Mmu(core_id, tlbs, walker, self.os, ideal=self.spec.ideal)
        if self._replay_chunks is not None:
            # The warmup consumed (and recorded) the identical stream;
            # replay it instead of regenerating every numpy batch.
            chunks = iter(self._replay_chunks[core_id])
        else:
            chunks = self.workload.stream_chunks(
                core_id, cfg.refs_per_core)
        core = Core(core_id, mmu, self.hierarchy, None,
                    gap_cycles=self.workload.gap_cycles,
                    mlp=cfg.core.mlp, issue_cycles=cfg.core.issue_cycles,
                    chunks=chunks)
        self.pwc_sets.append(pwcs)
        self.mmus.append(mmu)
        self.cores.append(core)

    def run(self) -> float:
        """Execute all cores to completion; return global cycles."""
        return self.engine.run()

    # -- multi-tenant assembly ---------------------------------------

    def _init_tenants(self) -> None:
        """Wire a multiprogrammed machine (``config.tenants > 1``).

        Per tenant: a workload stream (distinct deterministic seed), a
        private page table and an OS view over the shared allocator.
        Per core slot: one ASID-tagged TLB hierarchy and PWC set shared
        by all tenant contexts on that slot, plus one walker/MMU/core
        context per tenant.  The scheduler engine round-robins the
        contexts with the configured quantum.
        """
        cfg = self.config
        params = cfg.scheduler
        self.coordinator = TenantCoordinator(params)
        self.scheduler_stats = self.coordinator.stats
        self.allocator = self._build_allocator()
        workload_keys = (cfg.tenant_workloads
                         or (cfg.workload,) * cfg.tenants)
        for asid, key in enumerate(workload_keys):
            workload = make_workload(
                key, scale=cfg.scale, seed=tenant_seed(cfg.seed, asid))
            table = self.spec.build_table(self.allocator)
            os_model = OSMemoryManager(
                self.allocator, table,
                policy=self.spec.paging_policy, costs=cfg.fault_costs,
                thp_promotion_fraction=cfg.thp_promotion_fraction,
                on_unmap=self.coordinator.unmap_hook(asid),
                peer_reclaim=self.coordinator.peer_reclaim_hook(asid),
                extra_fault_cycles=self.coordinator.drain_cycles)
            self.coordinator.register_tenant(asid, os_model)
            self.tenants.append(Tenant(asid, key, workload, table,
                                       os_model))
        # Single-tenant attribute surface (tenant 0's view), so tools
        # that inspect ``system.os`` / ``system.page_table`` keep
        # working; collect() aggregates across the full tenant list.
        self.workload = self.tenants[0].workload
        self.page_table = self.tenants[0].page_table
        self.os = self.tenants[0].os
        self.hierarchy = self._build_hierarchy()

        # Streams are fed to cores in quantum-sized chunks so a time
        # slice never splits a generation batch on single-slot runs.
        # Quanta are per tenant once weights are configured.
        feeds = {tenant.asid: min(tenant_quantum(params, tenant.asid),
                                  CHUNK_REFS)
                 for tenant in self.tenants}
        warmup = (cfg.refs_per_core if cfg.warmup_refs is None
                  else cfg.warmup_refs)
        total_refs = cfg.refs_per_core * cfg.num_cores * cfg.tenants
        replay: Optional[Dict[Tuple[int, int], List[tuple]]] = None
        if warmup == cfg.refs_per_core and total_refs <= 4_000_000:
            replay = {(tenant.asid, slot): []
                      for tenant in self.tenants
                      for slot in range(cfg.num_cores)}
        self._prefault_tenants(warmup, feeds, replay)

        self.pwc_sets = []
        self.mmus = []
        self.cores = []
        slots: List[SlotSchedule] = []
        for slot_id in range(cfg.num_cores):
            tlbs = self._build_tlbs(slot_id)
            self.coordinator.register_slot(tlbs)
            if self.spec.pwc_levels:
                pwcs: Optional[PwcSet] = PwcSet(
                    self.spec.pwc_levels, entries=cfg.pwc.entries,
                    associativity=cfg.pwc.associativity,
                    latency=cfg.pwc.latency)
            else:
                pwcs = None
            slot_cores: List[Core] = []
            for tenant in self._slot_tenant_order(slot_id):
                walker = PageTableWalker(
                    tenant.page_table, self.hierarchy, slot_id,
                    pwcs=pwcs, bypass=self.spec.build_bypass(),
                    asid=tenant.asid)
                mmu = Mmu(slot_id, tlbs, walker, tenant.os,
                          ideal=self.spec.ideal, asid=tenant.asid)
                if replay is not None:
                    source = iter(replay[(tenant.asid, slot_id)])
                else:
                    source = tenant.workload.stream_chunks(
                        slot_id, cfg.refs_per_core,
                        chunk_refs=feeds[tenant.asid])
                # Align chunk boundaries to quantum multiples so chunk
                # handover matches slice boundaries even when the
                # quantum exceeds the generation batch.
                chunks = quantum_chunks(
                    source, tenant_quantum(params, tenant.asid))
                core = Core(slot_id, mmu, self.hierarchy, None,
                            gap_cycles=tenant.workload.gap_cycles,
                            mlp=cfg.core.mlp,
                            issue_cycles=cfg.core.issue_cycles,
                            chunks=chunks)
                slot_cores.append(core)
                self.mmus.append(mmu)
                self.cores.append(core)
            self.pwc_sets.append(pwcs)
            slots.append(SlotSchedule(slot_id, slot_cores, tlbs, pwcs))
        self.engine = ScheduledEngine(slots, params, self.coordinator)

    def _slot_tenant_order(self, slot_id: int) -> List[Tenant]:
        """Tenant contexts of one slot, node-affine first.

        On a NUMA machine each slot's round-robin queue starts with
        the tenants whose home node matches the slot's node (nearest
        first, ASID as the deterministic tiebreak), so the scheduler
        favours node-local contexts the way an affinity-aware OS
        balances run queues.  Single-node machines keep ASID order —
        the PR 3 schedule, bit for bit.
        """
        if self.topology is None:
            return list(self.tenants)
        topo = self.topology
        slot_node = topo.node_of_core(slot_id)
        distance = topo.distance[slot_node]
        return sorted(
            self.tenants,
            key=lambda t: (distance[topo.node_of_tenant(t.asid)],
                           t.asid))

    def _prefault_tenants(self, warmup: int, feeds: Dict[int, int],
                          replay) -> None:
        """Untimed multi-tenant warmup.

        Interleaves all (tenant, slot) streams in 256-reference quanta
        through each tenant's own fault path, so the shared frame pool
        fills — and fragments, and comes under cross-tenant pressure —
        in an order resembling the scheduled run.  Fault counters and
        scheduler accounting are reset afterwards: warmup is setup, not
        region-of-interest.
        """
        if warmup <= 0:
            return
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._prefault_tenants_inner(warmup, feeds, replay)
        finally:
            if gc_was_enabled:
                gc.enable()
        for tenant in self.tenants:
            tenant.os.stats = type(tenant.os.stats)()
        self.coordinator.reset()

    def _prefault_tenants_inner(self, warmup: int,
                                feeds: Dict[int, int], replay) -> None:
        cfg = self.config
        tenants = self.tenants
        pairs = [(tenant, slot)
                 for slot in range(cfg.num_cores)
                 for tenant in tenants]

        def make_iter(tenant: Tenant, slot: int):
            if replay is None:
                # Address-only pass: no VPN/line materialization.
                return tenant.workload.stream_chunks(
                    slot, warmup, chunk_refs=feeds[tenant.asid],
                    probe_keys=False)
            source = tenant.workload.stream_chunks(
                slot, warmup, chunk_refs=feeds[tenant.asid])
            record = replay[(tenant.asid, slot)]

            def recording():
                for chunk in source:
                    record.append(chunk)
                    yield chunk
            return recording()

        chunk_iters = {(t.asid, s): make_iter(t, s) for t, s in pairs}
        buffers: Dict[Tuple[int, int], List[int]] = {
            (t.asid, s): [] for t, s in pairs}
        positions = {(t.asid, s): 0 for t, s in pairs}
        # Repeat touches of a mapped page are no-ops until the first
        # reclaim anywhere: once any tenant starts evicting (its own
        # pages or a peer's), previously seen pages may need re-faulting
        # and every touch goes through the full path again.
        seen: Optional[Dict[Tuple[int, int], set]] = {
            (t.asid, s): set() for t, s in pairs}
        active = list(pairs)
        while active:
            still_active = []
            for tenant, slot in active:
                pair = (tenant.asid, slot)
                ensure_mapped = tenant.os.ensure_mapped
                addrs = buffers[pair]
                pos = positions[pair]
                quota = 256
                exhausted = False
                while quota:
                    if pos >= len(addrs):
                        nxt = next(chunk_iters[pair], None)
                        if nxt is None:
                            exhausted = True
                            break
                        addrs = buffers[pair] = nxt[0]
                        pos = 0
                    stop = min(pos + quota, len(addrs))
                    pair_seen = None if seen is None else seen[pair]
                    for vaddr in addrs[pos:stop]:
                        if pair_seen is not None:
                            page = vaddr >> PAGE_SHIFT
                            if page in pair_seen:
                                continue
                            pair_seen.add(page)
                        cost = ensure_mapped(vaddr, site=slot)
                        if (cost and seen is not None
                                and any(t.os.stats.reclaims
                                        for t in tenants)):
                            seen = None
                            pair_seen = None
                    quota -= stop - pos
                    pos = stop
                positions[pair] = pos
                if not exhausted:
                    still_active.append((tenant, slot))
            active = still_active
