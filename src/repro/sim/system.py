"""System assembly: cores + MMUs + page table + hierarchy from a config.

``System`` wires one simulated machine according to a
:class:`~repro.sim.config.SystemConfig`: the platform's memory hierarchy
(CPU vs NDP from Table I), one shared page table and OS built from the
mechanism spec, and per-core TLBs / PWCs / walkers / MMUs over shared
DRAM — the multithreaded, shared-dataset execution model the paper
evaluates.
"""

from __future__ import annotations

import gc
from typing import List, Optional

from repro.core.mechanisms import MechanismSpec, get_mechanism
from repro.mem.dram import DDR4_2400, HBM2
from repro.mem.hierarchy import (
    MemoryHierarchy,
    build_cpu_hierarchy,
    build_ndp_hierarchy,
)
from repro.mmu.mmu import Mmu
from repro.mmu.pwc import PwcSet
from repro.mmu.tlb import Tlb, TlbHierarchy
from repro.mmu.walker import PageTableWalker
from repro.sim.config import SYSTEM_NDP, SystemConfig
from repro.sim.core_model import Core
from repro.sim.engine import SimulationEngine
from repro.vm.address import HUGE_PAGE_SHIFT, PAGE_SHIFT
from repro.vm.frames import FrameAllocator
from repro.vm.os_model import OSMemoryManager
from repro.workloads.registry import make_workload


class System:
    """One fully assembled simulated machine, ready to run."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.spec: MechanismSpec = get_mechanism(config.mechanism)
        self.workload = make_workload(
            config.workload, scale=config.scale, seed=config.seed)
        self.allocator = FrameAllocator(
            config.physical_bytes,
            fragmentation=config.boot_fragmentation)
        self.page_table = self.spec.build_table(self.allocator)
        self.os = OSMemoryManager(
            self.allocator, self.page_table,
            policy=self.spec.paging_policy, costs=config.fault_costs,
            thp_promotion_fraction=config.thp_promotion_fraction)
        self.hierarchy = self._build_hierarchy()
        # When the warmup replays the exact ROI stream (the default),
        # the chunks materialized for prefaulting are handed to the
        # cores afterwards, so each stream is generated once.  Bounded
        # so huge sweeps do not hold every reference in memory.
        self._replay_chunks: Optional[List[List[tuple]]] = None
        warmup = (config.refs_per_core if config.warmup_refs is None
                  else config.warmup_refs)
        if (warmup == config.refs_per_core
                and config.refs_per_core * config.num_cores <= 4_000_000):
            self._replay_chunks = [[] for _ in range(config.num_cores)]
        self.pwc_sets: List[Optional[PwcSet]] = []
        self.mmus: List[Mmu] = []
        self.cores: List[Core] = []
        self._prefault()
        for core_id in range(config.num_cores):
            self._add_core(core_id)
        self.engine = SimulationEngine(self.cores)

    def _prefault(self) -> None:
        """Untimed warmup: demand-page each core's early footprint.

        Runs every core's first ``warmup_refs`` references through the
        OS fault path only — no cycles are charged, but allocator and
        page-table state (huge-page placement, contiguity consumption,
        ECH growth, reclaim under pressure) fully materialize, exactly
        like the paper's untimed initialization phase.  Cores are
        interleaved so their allocations interleave too.
        """
        cfg = self.config
        warmup = (cfg.refs_per_core if cfg.warmup_refs is None
                  else cfg.warmup_refs)
        if warmup <= 0:
            return
        # Like the run loop, prefaulting allocates heavily and builds
        # no reference cycles; pause the cyclic collector for it.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._prefault_inner(warmup)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _prefault_inner(self, warmup: int) -> None:
        cfg = self.config
        # Chunked consumption with a 256-reference round-robin quantum:
        # allocation order (and with it frame placement / contiguity
        # consumption) is identical to stepping the per-item streams.
        record = self._replay_chunks
        if record is not None:
            def recording(core_id):
                for chunk in self.workload.stream_chunks(core_id, warmup):
                    record[core_id].append(chunk)
                    yield chunk
            chunk_iters = [
                recording(core_id) for core_id in range(cfg.num_cores)
            ]
        else:
            chunk_iters = [
                self.workload.stream_chunks(core_id, warmup)
                for core_id in range(cfg.num_cores)
            ]
        buffers: List[List[int]] = [[] for _ in range(cfg.num_cores)]
        positions = [0] * cfg.num_cores
        ensure_mapped = self.os.ensure_mapped
        os_stats = self.os.stats
        # Repeat touches of an already-faulted page are no-ops, so they
        # can be skipped via a seen-set — *until* the first reclaim:
        # once the OS starts evicting, a previously mapped page may need
        # re-faulting and every touch must go through the full path
        # again (seed-identical behaviour under memory pressure).
        seen: Optional[set] = set()
        active = list(range(cfg.num_cores))
        while active:
            still_active = []
            for core_id in active:
                addrs = buffers[core_id]
                pos = positions[core_id]
                quota = 256
                exhausted = False
                while quota:
                    if pos >= len(addrs):
                        nxt = next(chunk_iters[core_id], None)
                        if nxt is None:
                            exhausted = True
                            break
                        addrs = buffers[core_id] = nxt[0]
                        pos = 0
                    stop = pos + quota
                    if stop > len(addrs):
                        stop = len(addrs)
                    if seen is not None:
                        index = pos
                        while index < stop:
                            vaddr = addrs[index]
                            index += 1
                            page = vaddr >> PAGE_SHIFT
                            if page in seen:
                                continue
                            ensure_mapped(vaddr, site=core_id)
                            seen.add(page)
                            if os_stats.reclaims:
                                seen = None  # pressure: exact from here
                                break
                        if seen is None:
                            for vaddr in addrs[index:stop]:
                                ensure_mapped(vaddr, site=core_id)
                    else:
                        for vaddr in addrs[pos:stop]:
                            ensure_mapped(vaddr, site=core_id)
                    quota -= stop - pos
                    pos = stop
                positions[core_id] = pos
                if not exhausted:
                    still_active.append(core_id)
            active = still_active
        # Warmup fault work is setup, not ROI: reset the OS counters.
        self.os.stats = type(self.os.stats)()

    def _build_hierarchy(self) -> MemoryHierarchy:
        cfg = self.config
        if cfg.system == SYSTEM_NDP:
            return build_ndp_hierarchy(
                cfg.num_cores, HBM2,
                l1_size=cfg.l1.size, l1_assoc=cfg.l1.associativity,
                l1_latency=cfg.l1.latency)
        return build_cpu_hierarchy(
            cfg.num_cores, DDR4_2400,
            l1_size=cfg.l1.size, l1_assoc=cfg.l1.associativity,
            l1_latency=cfg.l1.latency,
            l2_size=cfg.l2.size, l2_assoc=cfg.l2.associativity,
            l2_latency=cfg.l2.latency,
            l3_per_core=cfg.l3_per_core.size,
            l3_assoc=cfg.l3_per_core.associativity,
            l3_latency=cfg.l3_per_core.latency)

    def _build_tlbs(self, core_id: int) -> TlbHierarchy:
        t = self.config.tlb
        return TlbHierarchy(
            l1_small=Tlb(f"L1-DTLB{core_id}", t.l1_small_entries,
                         t.l1_small_assoc, t.l1_small_latency,
                         page_shift=PAGE_SHIFT),
            l1_huge=Tlb(f"L1-2M-TLB{core_id}", t.l1_huge_entries,
                        t.l1_huge_assoc, t.l1_small_latency,
                        page_shift=HUGE_PAGE_SHIFT),
            l2=Tlb(f"L2-TLB{core_id}", t.l2_entries, t.l2_assoc,
                   t.l2_latency, page_shift=PAGE_SHIFT),
        )

    def _add_core(self, core_id: int) -> None:
        cfg = self.config
        tlbs = self._build_tlbs(core_id)
        if self.spec.pwc_levels:
            pwcs: Optional[PwcSet] = PwcSet(
                self.spec.pwc_levels, entries=cfg.pwc.entries,
                associativity=cfg.pwc.associativity,
                latency=cfg.pwc.latency)
        else:
            pwcs = None
        walker = PageTableWalker(
            self.page_table, self.hierarchy, core_id,
            pwcs=pwcs, bypass=self.spec.build_bypass())
        mmu = Mmu(core_id, tlbs, walker, self.os, ideal=self.spec.ideal)
        if self._replay_chunks is not None:
            # The warmup consumed (and recorded) the identical stream;
            # replay it instead of regenerating every numpy batch.
            chunks = iter(self._replay_chunks[core_id])
        else:
            chunks = self.workload.stream_chunks(
                core_id, cfg.refs_per_core)
        core = Core(core_id, mmu, self.hierarchy, None,
                    gap_cycles=self.workload.gap_cycles,
                    mlp=cfg.core.mlp, issue_cycles=cfg.core.issue_cycles,
                    chunks=chunks)
        self.pwc_sets.append(pwcs)
        self.mmus.append(mmu)
        self.cores.append(core)

    def run(self) -> float:
        """Execute all cores to completion; return global cycles."""
        return self.engine.run()
