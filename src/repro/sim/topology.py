"""NUMA topology: per-node frame pools and distance-aware placement.

The flat machine of earlier releases has one :class:`~repro.vm.frames
.FrameAllocator` and one :class:`~repro.mem.dram.DramModel`, so every
page walk and data access costs the same wherever its frame lives.
This module splits the physical side into *nodes*:

* :class:`NumaTopology` describes the machine shape — node count,
  per-node DRAM capacity, a node distance matrix in extra cycles, and
  the core→node / tenant→node affinity maps;
* :class:`NumaFrameAllocator` is a facade over one private
  :class:`~repro.vm.frames.FrameAllocator` per node.  Frame numbers
  returned by the facade encode their node at bit
  :data:`~repro.vm.address.NODE_FRAME_SHIFT` (physical-address bit 40)
  — the physical mirror of the ASID-packing trick on the virtual side
  — so tagged frames flow through the page tables, caches and DRAM
  decode untouched, and node 0 alone is bit-identical to the flat
  allocator;
* placement policy (:data:`~repro.sim.config.PLACEMENT_POLICIES`)
  decides which node backs each allocation.  ``pte-local`` is the
  policy the paper's translation story motivates: page-table pages pin
  to the faulting core's node while data interleaves, so walker
  traffic stays local even when the dataset cannot.

The *timing* half lives in :meth:`repro.mem.hierarchy.MemoryHierarchy
.access_fast`: on a DRAM miss it decodes the node from the physical
address (one shift), charges the distance penalty for remote nodes and
routes the request to that node's banked DRAM model.  L1 hits — the
hot path — never see any of it.

Everything here is deterministic: placement decisions depend only on
allocation order and configuration (a round-robin counter, never host
state), so NUMA runs are bit-identical across processes and sweep
worker counts like the rest of the simulator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.sim.config import NumaParams, SystemConfig
from repro.vm.address import (
    NODE_FRAME_MASK,
    NODE_FRAME_SHIFT,
    PAGE_SIZE,
    node_frame_tag,
)
from repro.vm.frames import AllocatorStats, FrameAllocator, OutOfMemoryError
from repro.vm.radix import PT_ALLOC_SITE

__all__ = [
    "NumaTopology",
    "NumaFrameAllocator",
    "NumaAllocStats",
]


class NumaTopology:
    """Shape of a NUMA machine: nodes, distances, affinity maps.

    Args:
        nodes: node count (>= 1).
        distance: square matrix of *extra cycles* charged on a DRAM
            access from a core on node ``i`` to memory on node ``j``;
            the diagonal must be zero (local accesses pay nothing
            extra).
        core_nodes: home node of each core slot.
        tenant_nodes: home node of each tenant (address space) — the
            scheduler's affinity axis.
        node_bytes: DRAM capacity per node.
    """

    __slots__ = ("nodes", "distance", "core_nodes", "tenant_nodes",
                 "node_bytes")

    def __init__(self, nodes: int,
                 distance: Sequence[Sequence[float]],
                 core_nodes: Sequence[int],
                 tenant_nodes: Sequence[int],
                 node_bytes: int):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if len(distance) != nodes or any(
                len(row) != nodes for row in distance):
            raise ValueError(f"distance matrix must be {nodes}x{nodes}")
        for i, row in enumerate(distance):
            if row[i] != 0:
                raise ValueError("distance diagonal must be zero")
            if any(cycles < 0 for cycles in row):
                raise ValueError("distances must be non-negative")
        for name, homes in (("core", core_nodes), ("tenant",
                                                   tenant_nodes)):
            if any(not 0 <= n < nodes for n in homes):
                raise ValueError(f"{name} home node out of range")
        self.nodes = nodes
        self.distance: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(float(cycles) for cycles in row) for row in distance)
        self.core_nodes = tuple(core_nodes)
        self.tenant_nodes = tuple(tenant_nodes)
        self.node_bytes = node_bytes

    @classmethod
    def from_config(cls, config: SystemConfig) -> "NumaTopology":
        """Derive the topology a :class:`SystemConfig` describes.

        Cores spread over the nodes in contiguous blocks (cores 0..k
        on node 0, like socket enumeration on real machines); tenants
        round-robin so consecutive ASIDs land on different nodes.  The
        distance matrix is ``numa.distance_matrix`` when configured
        (asymmetric studies), else uniform at ``numa.remote_cycles``
        off the diagonal.
        """
        params = config.numa
        return cls.from_params(params, num_cores=config.num_cores,
                               tenants=config.tenants,
                               phys_bytes=config.physical_bytes)

    @classmethod
    def from_params(cls, params: NumaParams, num_cores: int,
                    tenants: int, phys_bytes: int) -> "NumaTopology":
        nodes = params.nodes
        if params.distance_matrix is not None:
            # Asymmetric-interconnect study: the config carries the
            # full matrix (validated square/zero-diagonal by
            # NumaParams) and remote_cycles is ignored.
            distance = [list(row) for row in params.distance_matrix]
        else:
            remote = float(params.remote_cycles)
            distance = [[0.0 if i == j else remote
                         for j in range(nodes)]
                        for i in range(nodes)]
        core_nodes = [core * nodes // num_cores
                      for core in range(num_cores)]
        tenant_nodes = [asid % nodes for asid in range(tenants)]
        return cls(nodes, distance, core_nodes, tenant_nodes,
                   node_bytes=phys_bytes // nodes)

    def node_of_core(self, core_id: int) -> int:
        """Home node of core slot ``core_id``."""
        return self.core_nodes[core_id]

    def node_of_tenant(self, asid: int) -> int:
        """Home node of tenant ``asid``."""
        return self.tenant_nodes[asid]

    def penalty_rows(self) -> Tuple[Tuple[float, ...], ...]:
        """Per-core distance rows for the memory hierarchy.

        ``rows[core_id][frame_node]`` is the extra cycles a DRAM
        access from ``core_id`` pays when its frame lives on
        ``frame_node`` — the one table lookup the miss path performs.
        """
        return tuple(self.distance[self.core_nodes[core]]
                     for core in range(len(self.core_nodes)))

    def fallback_order(self, node: int) -> Tuple[int, ...]:
        """Nodes to try when ``node``'s pool is exhausted.

        The home node first, then the rest nearest-first (node id as
        the deterministic tiebreak) — the zone fallback list of a real
        kernel.
        """
        others = sorted((n for n in range(self.nodes) if n != node),
                        key=lambda n: (self.distance[node][n], n))
        return (node, *others)


@dataclass(slots=True)
class NumaAllocStats:
    """Where the facade placed frames over a run."""

    node_allocs: List[int] = field(default_factory=list)
    pte_allocs: List[int] = field(default_factory=list)
    spills: int = 0           # allocations that fell back off-node
    huge_spills: int = 0      # 2 MB allocations that fell back


class NumaFrameAllocator:
    """Per-node frame pools behind the flat-allocator interface.

    Drop-in replacement for :class:`~repro.vm.frames.FrameAllocator`
    under multiprogramming and single runs alike: the OS model, the
    page tables and the reclaim path call the same methods, and frame
    numbers coming back carry their node at bit
    :data:`~repro.vm.address.NODE_FRAME_SHIFT`.  ``free_frame`` /
    ``free_block`` decode the tag and return memory to the pool that
    owns it.

    Placement is resolved per allocation from the policy:

    * page-table pages are recognized by their allocation site
      (:data:`~repro.vm.radix.PT_ALLOC_SITE`) and located via the
      *fault-site hint* the OS posts (:meth:`note_fault_site`) before
      installing a mapping — the table itself does not know which core
      faulted;
    * when the chosen node's pool is exhausted the allocation spills
      to the remaining nodes in distance order (counted in
      :attr:`numa_stats`), and only a machine-wide exhaustion raises
      :class:`~repro.vm.frames.OutOfMemoryError` — mirroring zone
      fallback.
    """

    def __init__(self, topology: NumaTopology, params: NumaParams,
                 fragmentation: float = 0.0):
        self.topology = topology
        self.placement = params.placement
        self.preferred_node = params.preferred_node
        self.pools: List[FrameAllocator] = [
            FrameAllocator(topology.node_bytes,
                           fragmentation=fragmentation)
            for _ in range(topology.nodes)
        ]
        self.numa_stats = NumaAllocStats(
            node_allocs=[0] * topology.nodes,
            pte_allocs=[0] * topology.nodes)
        self._fallback = tuple(topology.fallback_order(node)
                               for node in range(topology.nodes))
        # Interleave cursor: advances once per interleaved allocation,
        # in allocation order — deterministic across processes.
        self._rr = 0
        # Core slot the fault being handled runs on; posted by the OS
        # before map_page so page-table allocations can resolve
        # locality (tables allocate under PT_ALLOC_SITE, not a core).
        self._fault_site = 0
        self.num_frames = sum(pool.num_frames for pool in self.pools)
        self.phys_bytes = topology.node_bytes * topology.nodes

    # -- placement ----------------------------------------------------

    def note_fault_site(self, site: int) -> None:
        """Record the core slot whose fault is being handled."""
        self._fault_site = site

    def _site_node(self, site: int) -> int:
        """Home node of an allocation site (core slot or PT site)."""
        if site == PT_ALLOC_SITE:
            site = self._fault_site
        core_nodes = self.topology.core_nodes
        if 0 <= site < len(core_nodes):
            return core_nodes[site]
        return 0

    def _pick_node(self, site: int) -> int:
        """Node the placement policy chooses for this allocation."""
        placement = self.placement
        if placement == "local":
            return self._site_node(site)
        if placement == "preferred-node":
            return self.preferred_node
        if placement == "pte-local" and site == PT_ALLOC_SITE:
            return self._site_node(site)
        # interleave (and pte-local's data half): round-robin.
        node = self._rr
        self._rr = (node + 1) % self.topology.nodes
        return node

    # -- allocation ---------------------------------------------------

    def alloc_frame(self, site: int = 0) -> int:
        """Allocate one 4 KB frame; the node tag rides in the result."""
        chosen = self._pick_node(site)
        stats = self.numa_stats
        for node in self._fallback[chosen]:
            try:
                frame = self.pools[node].alloc_frame(site=site)
            except OutOfMemoryError:
                continue
            if node != chosen:
                stats.spills += 1
            stats.node_allocs[node] += 1
            if site == PT_ALLOC_SITE:
                stats.pte_allocs[node] += 1
            return frame | node_frame_tag(node)
        raise OutOfMemoryError("no free 4 KB frame on any node")

    def alloc_huge(self, site: int = 0) -> Optional[int]:
        """Allocate a whole 2 MB block; None on contiguity exhaustion.

        Spills across nodes like :meth:`alloc_frame`; None means *no*
        node has a whole free block, and the OS decides between
        compaction and 4 KB fallback exactly as on the flat machine.
        """
        chosen = self._pick_node(site)
        stats = self.numa_stats
        for node in self._fallback[chosen]:
            pool = self.pools[node]
            if not pool.free_block_count:
                continue  # silent probe: no per-pool failure booked
            first_frame = pool.alloc_huge()
            if node != chosen:
                stats.huge_spills += 1
            stats.node_allocs[node] += 1
            return first_frame | node_frame_tag(node)
        # One logical failure for the whole machine, matching the flat
        # allocator's one-per-failed-call accounting (probing every
        # empty pool must not multiply the count by the node count).
        self.pools[chosen].stats.huge_failures += 1
        return None

    def free_frame(self, frame: int) -> None:
        """Return a tagged frame to the pool of its node."""
        node = frame >> NODE_FRAME_SHIFT
        self.pools[node].free_frame(frame & NODE_FRAME_MASK)

    def free_block(self, first_frame: int) -> None:
        """Return a tagged 2 MB block to the pool of its node."""
        node = first_frame >> NODE_FRAME_SHIFT
        self.pools[node].free_block(first_frame & NODE_FRAME_MASK)

    def compact(self) -> int:
        """Compact every node's pool; return whole blocks recovered.

        One OS compaction pass scans all zones; the cycle cost is
        charged once by the OS model, as on the flat machine.
        """
        return sum(pool.compact() for pool in self.pools)

    def frame_paddr(self, frame: int) -> int:
        """Physical byte address of tagged frame ``frame``.

        The node tag lands at physical-address bit
        :data:`~repro.vm.address.NODE_PADDR_SHIFT`, where the memory
        hierarchy's miss path decodes it.
        """
        return frame * PAGE_SIZE

    # -- capacity inspection ------------------------------------------

    @property
    def stats(self) -> AllocatorStats:
        """Machine-wide allocator counters (field-wise pool sum)."""
        merged = AllocatorStats()
        names = [f.name for f in dataclasses.fields(AllocatorStats)]
        for pool in self.pools:
            for name in names:
                setattr(merged, name,
                        getattr(merged, name) + getattr(pool.stats,
                                                        name))
        return merged

    @property
    def free_frames(self) -> int:
        return sum(pool.free_frames for pool in self.pools)

    @property
    def free_block_count(self) -> int:
        return sum(pool.free_block_count for pool in self.pools)

    @property
    def scattered_free_frames(self) -> int:
        return sum(pool.scattered_free_frames for pool in self.pools)

    @property
    def movable_scattered_frames(self) -> int:
        return sum(pool.movable_scattered_frames
                   for pool in self.pools)

    @property
    def free_fraction(self) -> float:
        if self.num_frames == 0:
            return 0.0
        return self.free_frames / self.num_frames

    @property
    def pressure(self) -> float:
        """Occupied fraction of all physical memory (0 idle .. 1 full)."""
        return 1.0 - self.free_fraction

    def node_pressure(self, node: int) -> float:
        """Occupied fraction of one node's memory."""
        return self.pools[node].pressure

    @property
    def total_spills(self) -> int:
        """4 KB and 2 MB allocations that fell back off-node."""
        return self.numa_stats.spills + self.numa_stats.huge_spills

    @property
    def spill_fraction(self) -> float:
        """Fraction of allocations (4 KB and 2 MB alike) that fell
        back off the policy's chosen node because its pool was
        exhausted.  (Deliberate off-node placement — interleave,
        preferred-node — shows up in the DRAM-side remote counters
        instead.)"""
        total = sum(self.numa_stats.node_allocs)
        if total == 0:
            return 0.0
        return self.total_spills / total
