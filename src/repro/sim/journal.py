"""Crash-resumable supervision state: the per-sweep journal.

The result cache makes a sweep's *completed* cells durable, but until
now everything else the supervisor knew — how many attempts each cell
has burned, which backoff clocks are running, which cells were
quarantined — lived only in the supervisor's memory and died with it.
A supervisor SIGKILLed mid-sweep therefore restarted every counter:
cells one failure away from quarantine got a fresh retry budget, and
already-quarantined cells were retried from scratch.

The :class:`SweepJournal` closes that gap.  It is a JSONL file beside
the result cache (one per sweep identity — a digest of the sweep's
unique cell keys, so re-running the same grid finds the same journal)
appended through a single ``os.write`` on an ``O_APPEND`` descriptor,
the same torn-write-free idiom as
:class:`~repro.obs.events.JsonlSink`.  The supervisor records every
dispatch, terminal outcome, retry (with its wall-clock backoff gate),
and quarantine; :func:`load_journal` folds the records back into a
:class:`JournalState` that ``--resume`` feeds to the supervisor:

* ``attempts`` — per cell, the dispatches already *charged* (those
  with a recorded failure outcome).  A dispatch that never reported —
  the one in flight when the supervisor died — is not charged; resume
  re-dispatches it under the same attempt number.
* ``not_before`` — wall-clock backoff gates of cells that were in
  their retry delay, so resume does not stampede a flapping cell.
* ``quarantined`` — cells already given up on, re-quarantined on
  resume without burning new attempts.
* ``completed`` — cells with an ``ok`` outcome (informational; the
  cache is the source of truth for their results).

Journal writes are hardened like every other writer in the resilience
layer: transient ``OSError``\\ s retry with bounded backoff
(:func:`~repro.sim.faults.guarded_io`, site ``journal``), persistent
ones degrade to a counted drop — a lost journal line can cost a
redundant re-attempt after a crash, never the sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Set, Union

from repro.sim.faults import FaultPlan, guarded_io

#: On-disk record-format version, stamped on every line.
JOURNAL_VERSION = 1

#: Subdirectory (beside the cache entries) the journals live in.
JOURNAL_DIR = "journal"


def sweep_digest(keys: Sequence[str]) -> str:
    """Stable identity of a sweep: digest of its sorted unique keys.

    Order-independent, so the same grid — however its cells were
    enumerated — resumes from the same journal.
    """
    text = "\n".join(sorted(keys))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def journal_path(root: Union[str, Path],
                 keys: Sequence[str]) -> Path:
    return Path(root) / f"sweep-{sweep_digest(keys)}.journal.jsonl"


class SweepJournal:
    """Append-only dispatch/outcome log for one sweep.

    ``resume=False`` (a fresh run of this grid) truncates any journal
    a previous run left behind; ``resume=True`` appends to it, so the
    combined file still replays in order.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False,
                 fault_plan: Optional[FaultPlan] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.dropped = 0
        self._plan = fault_plan
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if not resume:
            flags |= os.O_TRUNC
        self._fd: Optional[int] = os.open(self.path, flags, 0o644)

    def record(self, kind: str, **data) -> None:
        """Append one record; never raises (see module docstring)."""
        if self._fd is None:
            return
        record = {"v": JOURNAL_VERSION, "kind": kind,
                  "t": time.time()}
        record.update(data)
        line = (json.dumps(record, sort_keys=True) + "\n").encode(
            "utf-8")
        try:
            guarded_io(lambda: os.write(self._fd, line),
                       "journal", kind, self._plan)
        except OSError:
            self.dropped += 1

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalState:
    """What a journal says about a sweep that did not finish."""

    attempts: Dict[str, int] = field(default_factory=dict)
    not_before: Dict[str, float] = field(default_factory=dict)
    quarantined: Dict[str, Dict[str, object]] = field(
        default_factory=dict)
    completed: Set[str] = field(default_factory=set)
    interrupted: bool = False
    records: int = 0

    def __bool__(self) -> bool:
        return self.records > 0


def load_journal(path: Union[str, Path]) -> JournalState:
    """Fold a journal back into resumable supervisor state.

    Tolerates a torn final line (the crash may have been mid-append
    on a filesystem without atomic O_APPEND semantics) and unknown
    record kinds (forward compatibility).
    """
    state = JournalState()
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return state
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue   # torn tail — ignore and keep what replayed
        kind = record.get("kind")
        key = record.get("key")
        state.records += 1
        if kind == "outcome" and key:
            if record.get("status") == "ok":
                state.completed.add(key)
                state.not_before.pop(key, None)
            else:
                attempt = int(record.get("attempt", 0))
                if attempt > state.attempts.get(key, 0):
                    state.attempts[key] = attempt
        elif kind == "retry" and key:
            state.not_before[key] = float(
                record.get("not_before", 0.0))
        elif kind == "quarantine" and key:
            state.quarantined[key] = {
                "label": record.get("label", ""),
                "attempts": int(record.get("attempts", 0)),
                "fail_kind": record.get("fail_kind", "error"),
                "error": record.get("error", ""),
            }
            state.not_before.pop(key, None)
        elif kind == "interrupted":
            state.interrupted = True
    return state
