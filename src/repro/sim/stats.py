"""Lightweight named-counter statistics.

Every architectural component (TLBs, caches, DRAM channels, walkers)
keeps its own small stat objects; the experiment runner aggregates them
into a flat mapping for reporting.  A tiny hand-rolled class is used
instead of ``collections.Counter`` so that attribute access stays cheap
on the simulator hot path and so ratios are computed in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with a 0.0 guard for empty runs."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


@dataclass(slots=True)
class HitMissStats:
    """Hit/miss counters shared by TLBs, PWCs and caches."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return ratio(self.hits, self.accesses)

    @property
    def miss_rate(self) -> float:
        return ratio(self.misses, self.accesses)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def merge(self, other: "HitMissStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


@dataclass(slots=True)
class LatencyStats:
    """Accumulates a latency distribution (sum / count / max)."""

    total: float = 0.0
    count: int = 0
    maximum: float = 0.0

    def record(self, value: float) -> None:
        self.total += value
        self.count += 1
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return ratio(self.total, self.count)

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self.maximum = 0.0

    def merge(self, other: "LatencyStats") -> None:
        self.total += other.total
        self.count += other.count
        if other.maximum > self.maximum:
            self.maximum = other.maximum


@dataclass(slots=True)
class CounterBag:
    """A free-form bag of named integer counters."""

    counters: dict = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def as_dict(self) -> dict:
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()

    def merge(self, other: "CounterBag") -> None:
        for name, value in other.counters.items():
            self.add(name, value)


def weighted_mean(values, weights) -> float:
    """Weighted arithmetic mean, 0.0 when weights sum to zero."""
    total_weight = sum(weights)
    if total_weight == 0:
        return 0.0
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def geometric_mean(values) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
